//! The kernel's event queue: a binary heap fronted by a one-slot buffer.
//!
//! Events pop in strict `(time, tie, seq)` order. Under the default
//! [`TieBreak::Fifo`] policy `tie == seq`, so this is the kernel's native
//! `(time, creation order)` total order. The adversarial policies remap
//! `tie` to reorder *only* events that share a timestamp — the detector
//! behind `numagap check --perturb` uses them to prove that observed
//! determinism is structural (invariant under scheduler choice), not an
//! accident of creation order.
//!
//! Most of the time the event a kernel step schedules is also the next one
//! to run (a compute wake at the current instant, the only in-flight
//! delivery of a rendezvous), so pushing it through the heap just to pop it
//! right back costs two rounds of sift-up/sift-down and moves the
//! `EventEntry` (which carries a whole [`Message`] on delivery events)
//! around the heap array for nothing.
//!
//! The `front` slot holds the current minimum outside the heap: a push
//! either lands there (displacing a later entry into the heap at most once)
//! and a pop takes the smaller of `front` and the heap top. Pop order is
//! exactly the total `(time, tie, seq)` order either way — the slot is a
//! transparent buffer, not a scheduling heuristic — which the in-module
//! property test checks against randomized insertions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::message::Message;
use crate::time::SimTime;
use crate::ProcId;

/// Policy for ordering kernel events that share a timestamp.
///
/// The kernel's event order is the total order `(time, tie, seq)` where
/// `seq` is event creation order and `tie` is derived from `seq` by this
/// policy. [`TieBreak::Fifo`] (the default, `tie = seq`) is the native
/// order every golden makespan is pinned against. The other policies are
/// *adversarial*: they permute events within each equal-timestamp group
/// while leaving cross-timestamp order untouched, so a program whose
/// virtual time or results move under them depends on scheduler tiebreak
/// choice — accidental, not structural, determinism. `numagap check
/// --perturb` sweeps these policies over the application suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum TieBreak {
    /// Creation order among equal timestamps (the kernel's native order).
    #[default]
    Fifo,
    /// Reverse creation order among equal timestamps: the newest scheduled
    /// event at an instant runs first.
    Reversed,
    /// Seeded pseudo-random permutation of equal-timestamp events
    /// (splitmix64 over the creation sequence number). Deterministic for a
    /// given seed; different seeds give different adversarial orders.
    Shuffled(u64),
}

impl TieBreak {
    /// Maps an event's creation sequence number to its tiebreak key. The
    /// map is injective for `Fifo`/`Reversed`; `Shuffled` collisions are
    /// broken by `seq` in the full `(time, tie, seq)` key.
    pub(crate) fn tie(self, seq: u64) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Reversed => !seq,
            TieBreak::Shuffled(seed) => splitmix64(seed ^ seq),
        }
    }
}

impl std::fmt::Display for TieBreak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TieBreak::Fifo => write!(f, "fifo"),
            TieBreak::Reversed => write!(f, "reversed"),
            TieBreak::Shuffled(seed) => write!(f, "shuffled({seed})"),
        }
    }
}

/// The finalizer of splitmix64: a well-mixed bijection on `u64`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub(crate) enum EventKind {
    Wake(ProcId),
    Deliver(ProcId, Message),
}

pub(crate) struct EventEntry {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    /// Tiebreak key among equal timestamps; `seq` under [`TieBreak::Fifo`].
    pub(crate) tie: u64,
    pub(crate) kind: EventKind,
}

impl EventEntry {
    fn key(&self) -> (SimTime, u64, u64) {
        (self.time, self.tie, self.seq)
    }
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.key().cmp(&self.key())
    }
}

/// Counters of event-queue work, folded into [`crate::HotProfile`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct QueueCounters {
    /// Entries that entered the binary heap proper.
    pub heap_pushes: u64,
    /// Entries that left through the binary heap proper.
    pub heap_pops: u64,
    /// Events that bypassed the heap through the front slot.
    pub front_pops: u64,
    /// Peak number of queued events.
    pub peak_len: u64,
}

#[derive(Default)]
pub(crate) struct EventQueue {
    /// The queue minimum, held outside the heap. Invariant: when `front` is
    /// `Some`, its key is strictly smaller than every key in `heap`.
    front: Option<EventEntry>,
    heap: BinaryHeap<EventEntry>,
    pub(crate) counters: QueueCounters,
}

impl EventQueue {
    pub(crate) fn push(&mut self, entry: EventEntry) {
        match &self.front {
            None => {
                // The front slot may be empty while the heap is not (a pop
                // just consumed it); only entries beating the heap top may
                // claim it.
                if self.heap.peek().is_some_and(|top| top.key() < entry.key()) {
                    self.counters.heap_pushes += 1;
                    self.heap.push(entry);
                } else {
                    self.front = Some(entry);
                }
            }
            Some(f) if entry.key() < f.key() => {
                let displaced = self.front.replace(entry).expect("front checked Some");
                self.counters.heap_pushes += 1;
                self.heap.push(displaced);
            }
            Some(_) => {
                self.counters.heap_pushes += 1;
                self.heap.push(entry);
            }
        }
        let len = self.len() as u64;
        if len > self.counters.peak_len {
            self.counters.peak_len = len;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<EventEntry> {
        match (&self.front, self.heap.peek()) {
            (Some(f), Some(top)) if top.key() < f.key() => {
                // Unreachable under the invariant, but harmless to honor.
                debug_assert!(false, "front slot invariant violated");
                self.counters.heap_pops += 1;
                self.heap.pop()
            }
            (Some(_), _) => {
                self.counters.front_pops += 1;
                self.front.take()
            }
            (None, Some(_)) => {
                self.counters.heap_pops += 1;
                self.heap.pop()
            }
            (None, None) => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len() + usize::from(self.front.is_some())
    }

    /// Virtual time of the earliest queued event, without popping it. The
    /// kernel uses this to detect timestamp boundaries (the point where it
    /// must flush deferred transfer bookings before time advances).
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        match (&self.front, self.heap.peek()) {
            (Some(f), Some(top)) => Some(f.time.min(top.time)),
            (Some(f), None) => Some(f.time),
            (None, Some(top)) => Some(top.time),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(time: u64, seq: u64) -> EventEntry {
        EventEntry {
            time: SimTime::from_nanos(time),
            seq,
            tie: TieBreak::Fifo.tie(seq),
            kind: EventKind::Wake(ProcId(0)),
        }
    }

    /// Deterministic xorshift generator — no wall-clock nondeterminism.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn random_insertions_pop_in_total_order() {
        for seed in 1..=5u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut q = EventQueue::default();
            let mut reference = Vec::new();
            let mut seq = 0u64;
            // Interleave pushes and pops so the front slot sees every
            // displacement pattern, not just push-all/pop-all.
            let mut popped = Vec::new();
            for _ in 0..2_000 {
                if !rng.next().is_multiple_of(3) || q.len() == 0 {
                    let t = rng.next() % 64;
                    reference.push((SimTime::from_nanos(t), seq, seq));
                    q.push(entry(t, seq));
                    seq += 1;
                } else {
                    let e = q.pop().expect("non-empty");
                    popped.push(e.key());
                }
            }
            while let Some(e) = q.pop() {
                popped.push(e.key());
            }
            assert_eq!(popped.len(), reference.len(), "seed {seed}");
            // Every pop must return the minimum of what was queued at that
            // moment; over a full drain that implies each prefix is sorted
            // w.r.t. what had been inserted. Cheap global check: the final
            // drain is totally ordered, and the multiset matches.
            let mut sorted = reference.clone();
            sorted.sort_unstable();
            let mut popped_sorted = popped.clone();
            popped_sorted.sort_unstable();
            assert_eq!(popped_sorted, sorted, "multiset mismatch, seed {seed}");
        }
    }

    #[test]
    fn pop_always_returns_current_minimum() {
        // Stronger per-step check on a smaller run: track the pending set
        // and assert each pop is its exact minimum (time, seq).
        let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
        let mut q = EventQueue::default();
        let mut pending: Vec<(SimTime, u64, u64)> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..1_000 {
            if rng.next().is_multiple_of(2) || pending.is_empty() {
                let t = rng.next() % 16;
                pending.push((SimTime::from_nanos(t), seq, seq));
                q.push(entry(t, seq));
                seq += 1;
            } else {
                let min = *pending.iter().min().unwrap();
                let got = q.pop().expect("non-empty").key();
                assert_eq!(got, min);
                pending.retain(|&k| k != min);
            }
        }
    }

    #[test]
    fn rendezvous_pattern_stays_out_of_the_heap() {
        // push→pop→push→pop (the ping-pong shape) must be served entirely
        // by the front slot.
        let mut q = EventQueue::default();
        for i in 0..100u64 {
            q.push(entry(i, i));
            assert_eq!(q.pop().unwrap().key(), (SimTime::from_nanos(i), i, i));
        }
        assert_eq!(q.counters.front_pops, 100);
        assert_eq!(q.counters.heap_pushes, 0);
        assert_eq!(q.counters.heap_pops, 0);
        assert_eq!(q.counters.peak_len, 1);
    }

    /// Drains a queue loaded with `(time, seq)` pairs under one policy.
    fn drain_under(policy: TieBreak, events: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut q = EventQueue::default();
        for &(t, seq) in events {
            q.push(EventEntry {
                time: SimTime::from_nanos(t),
                seq,
                tie: policy.tie(seq),
                kind: EventKind::Wake(ProcId(0)),
            });
        }
        std::iter::from_fn(|| q.pop().map(|e| (e.time.as_nanos(), e.seq))).collect()
    }

    #[test]
    fn adversarial_policies_permute_only_within_a_timestamp() {
        // Two timestamp groups; every policy must keep the groups in time
        // order and emit each group as a permutation of its members.
        let events: Vec<(u64, u64)> = vec![(5, 0), (5, 1), (5, 2), (9, 3), (9, 4)];
        for policy in [
            TieBreak::Fifo,
            TieBreak::Reversed,
            TieBreak::Shuffled(7),
            TieBreak::Shuffled(0xDEAD_BEEF),
        ] {
            let order = drain_under(policy, &events);
            let times: Vec<u64> = order.iter().map(|&(t, _)| t).collect();
            assert_eq!(times, vec![5, 5, 5, 9, 9], "{policy}: time order broken");
            let mut g1: Vec<u64> = order[..3].iter().map(|&(_, s)| s).collect();
            let mut g2: Vec<u64> = order[3..].iter().map(|&(_, s)| s).collect();
            g1.sort_unstable();
            g2.sort_unstable();
            assert_eq!(g1, vec![0, 1, 2], "{policy}: group 1 not a permutation");
            assert_eq!(g2, vec![3, 4], "{policy}: group 2 not a permutation");
        }
    }

    #[test]
    fn reversed_is_lifo_within_a_timestamp() {
        let events: Vec<(u64, u64)> = vec![(5, 0), (5, 1), (5, 2)];
        let order = drain_under(TieBreak::Reversed, &events);
        assert_eq!(order, vec![(5, 2), (5, 1), (5, 0)]);
    }

    #[test]
    fn shuffled_actually_reorders_and_replays_from_its_seed() {
        let events: Vec<(u64, u64)> = (0..16).map(|s| (1, s)).collect();
        let fifo = drain_under(TieBreak::Fifo, &events);
        let a = drain_under(TieBreak::Shuffled(42), &events);
        let b = drain_under(TieBreak::Shuffled(42), &events);
        let c = drain_under(TieBreak::Shuffled(43), &events);
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, fifo, "16 equal-time events must not shuffle to FIFO");
        assert_ne!(a, c, "different seeds give different adversarial orders");
    }
}
