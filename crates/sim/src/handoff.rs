//! The kernel ↔ process control handoff: a one-slot parked rendezvous.
//!
//! Each simulated process is an OS thread, and every simulated operation is
//! a strict rendezvous with the kernel: the process publishes a [`Request`]
//! and sleeps until the kernel publishes the completing [`Grant`]. The
//! original implementation used a pair of `std::sync::mpsc` channels per
//! process, which costs two channel sends (each with its own lock, queue
//! node and futex wake) per virtual context switch. This module replaces
//! the pair with a single `Mutex`/`Condvar`-protected slot per process.
//!
//! Because the protocol alternates strictly (there is never more than one
//! outstanding request *or* grant), a one-deep slot is enough. The waiter
//! spins briefly before parking; the publisher only issues a condvar notify
//! when the peer has actually recorded itself as parked. Since the stretch
//! between a grant and the next request is usually nanoseconds of real
//! work, the common case hands off inside the spin window with **zero**
//! thread wakes — the `numagap selfperf` bench records the measured wake
//! rate in [`crate::HotProfile::park_wakes`].
//!
//! Determinism note: whether a particular handoff parks or spins depends on
//! host timing, but it can never change *what* is handed off or in what
//! order — virtual time is bit-identical either way. `park_wakes` is the
//! only host-timing-dependent counter in the profile and is excluded from
//! exact benchmark comparison.

use crate::sync::{Condvar, Mutex};

use crate::process::{Grant, Request};

/// Iterations a waiter spins on the slot before starting to yield.
///
/// Under `cfg(loom)` a single probe: every spin iteration is a schedule
/// choice point for the model checker, so a long budget explodes the
/// search space without adding distinct behaviors (spinning is pure
/// polling — one probe covers the "saw it before parking" interleaving).
#[cfg(not(loom))]
const SPIN: u32 = 192;
#[cfg(loom)]
const SPIN: u32 = 1;

/// `yield_now` polls after the busy-spin phase, before parking. A peer that
/// was itself parked takes microseconds of scheduler latency to wake and
/// respond — far beyond any busy-spin budget — and one side parking makes
/// the *other* side's next wait exceed its spin too, so a single park
/// otherwise cascades into two futex wakes per context switch forever (the
/// legacy channel behavior). Yielding covers that latency cheaply: with no
/// other runnable thread a yield returns almost immediately, and with one
/// it donates the time slice the waking peer needs.
#[cfg(not(loom))]
const YIELDS: u32 = 64;
#[cfg(loom)]
const YIELDS: u32 = 0;

/// The peer thread hung up: the process side was dropped (normal thread
/// exit after `Exit`, or a panic unwinding the entry function).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Hangup;

#[derive(Default)]
struct Slot {
    grant: Option<Grant>,
    request: Option<Request>,
    /// The process thread is parked on `to_proc`.
    proc_parked: bool,
    /// The kernel is parked on `to_kernel` waiting for this process.
    kernel_parked: bool,
    /// N:M mode: the process *fiber* yielded back to the scheduler and
    /// needs a [`crate::sched`] wake to resume — distinct from
    /// `proc_parked`, which records a real OS-thread park (and feeds the
    /// `park_wakes` counter, which must keep meaning futex-level wakes).
    sched_parked: bool,
    /// The process side was dropped; no request will ever arrive again.
    proc_gone: bool,
    /// N:M mode: panic message captured by the fiber's `catch_unwind`
    /// before it hung up (there is no thread join to harvest it from).
    failure: Option<String>,
    /// Condvar notifies issued while the peer was recorded as parked.
    park_wakes: u64,
}

/// One process's rendezvous slot, shared between the kernel and the
/// process thread (via `Arc`).
pub(crate) struct Handoff {
    slot: Mutex<Slot>,
    to_proc: Condvar,
    to_kernel: Condvar,
}

impl Handoff {
    pub(crate) fn new() -> Self {
        Handoff {
            slot: Mutex::new(Slot::default()),
            to_proc: Condvar::new(),
            to_kernel: Condvar::new(),
        }
    }

    /// Kernel side: publishes a grant, waking the process if it is parked.
    /// Returns `Err(Hangup)` if the process side already hung up, and
    /// otherwise whether the process fiber is parked on the scheduler and
    /// needs a [`crate::sched::Scheduler::wake`] to resume (always `false`
    /// in legacy 1:1 mode, where the thread wake happens right here).
    pub(crate) fn grant(&self, grant: Grant) -> Result<bool, Hangup> {
        let mut s = self.slot.lock().expect("handoff mutex poisoned");
        if s.proc_gone {
            return Err(Hangup);
        }
        debug_assert!(s.grant.is_none(), "grant published over a pending grant");
        s.grant = Some(grant);
        if s.proc_parked {
            s.park_wakes += 1;
            self.to_proc.notify_one();
        }
        let needs_wake = s.sched_parked;
        s.sched_parked = false;
        Ok(needs_wake)
    }

    /// Kernel side: takes the next request, spinning briefly before
    /// parking. Returns `Err(Hangup)` if the process hung up instead.
    pub(crate) fn recv_request(&self) -> Result<Request, Hangup> {
        for i in 0..SPIN + YIELDS {
            if let Ok(mut s) = self.slot.try_lock() {
                if let Some(req) = s.request.take() {
                    return Ok(req);
                }
                if s.proc_gone {
                    return Err(Hangup);
                }
            }
            if i < SPIN {
                crate::sync::spin_loop();
            } else {
                crate::sync::yield_now();
            }
        }
        let mut s = self.slot.lock().expect("handoff mutex poisoned");
        loop {
            if let Some(req) = s.request.take() {
                return Ok(req);
            }
            if s.proc_gone {
                return Err(Hangup);
            }
            s.kernel_parked = true;
            s = self.to_kernel.wait(s).expect("handoff mutex poisoned");
            s.kernel_parked = false;
        }
    }

    /// Process side: publishes a request, waking the kernel if it is
    /// parked. Infallible: the kernel outlives every process thread's use
    /// of the slot.
    pub(crate) fn send_request(&self, request: Request) {
        let mut s = self.slot.lock().expect("handoff mutex poisoned");
        debug_assert!(
            s.request.is_none(),
            "request published over a pending request"
        );
        s.request = Some(request);
        if s.kernel_parked {
            s.park_wakes += 1;
            self.to_kernel.notify_one();
        }
    }

    /// Process side: takes the next grant, spinning briefly before parking.
    pub(crate) fn wait_grant(&self) -> Grant {
        for i in 0..SPIN + YIELDS {
            if let Ok(mut s) = self.slot.try_lock() {
                if let Some(grant) = s.grant.take() {
                    return grant;
                }
            }
            if i < SPIN {
                crate::sync::spin_loop();
            } else {
                crate::sync::yield_now();
            }
        }
        let mut s = self.slot.lock().expect("handoff mutex poisoned");
        loop {
            if let Some(grant) = s.grant.take() {
                return grant;
            }
            s.proc_parked = true;
            s = self.to_proc.wait(s).expect("handoff mutex poisoned");
            s.proc_parked = false;
        }
    }

    /// N:M mode: the process fiber's grant wait. Identical protocol to
    /// [`Self::wait_grant`], but instead of parking the OS thread it marks
    /// the slot scheduler-parked and yields the *fiber* back to its worker;
    /// the kernel's next grant sees the mark and issues a scheduler wake.
    /// The mark is set and the grant checked under one lock acquisition, so
    /// a grant can never slip between the check and the yield unnoticed —
    /// it either lands in the spin window (no scheduler interaction) or
    /// observes `sched_parked` and wakes the fiber.
    pub(crate) fn wait_grant_fiber(&self) -> Grant {
        loop {
            for i in 0..SPIN + YIELDS {
                if let Ok(mut s) = self.slot.try_lock() {
                    if let Some(grant) = s.grant.take() {
                        return grant;
                    }
                }
                if i < SPIN {
                    crate::sync::spin_loop();
                } else {
                    crate::sync::yield_now();
                }
            }
            {
                let mut s = self.slot.lock().expect("handoff mutex poisoned");
                if let Some(grant) = s.grant.take() {
                    return grant;
                }
                s.sched_parked = true;
            }
            crate::fiber::yield_now();
        }
    }

    /// N:M mode: arms the scheduler-park mark on a brand-new rank whose
    /// fiber has never run, so the kernel's very first grant reports
    /// `needs_wake` and dispatches the fiber for the first time.
    pub(crate) fn prime_sched_parked(&self) {
        let mut s = self.slot.lock().expect("handoff mutex poisoned");
        s.sched_parked = true;
    }

    /// Process side: marks the slot dead on thread exit (normal or panic)
    /// and wakes the kernel if it is waiting for a request that will never
    /// come. Called from [`crate::process::HangupGuard`]'s `Drop`.
    pub(crate) fn hangup(&self) {
        self.hangup_with(None);
    }

    /// N:M mode: hangs up and simultaneously records the panic message the
    /// fiber's `catch_unwind` captured (if any), under one lock, so the
    /// kernel can never observe the hangup without the failure being
    /// readable via [`Self::take_failure`].
    pub(crate) fn hangup_with(&self, failure: Option<String>) {
        let mut s = self.slot.lock().expect("handoff mutex poisoned");
        s.proc_gone = true;
        if failure.is_some() {
            s.failure = failure;
        }
        if s.kernel_parked {
            s.park_wakes += 1;
            self.to_kernel.notify_one();
        }
    }

    /// Kernel side: takes the panic message recorded by a fiber hangup.
    pub(crate) fn take_failure(&self) -> Option<String> {
        self.slot
            .lock()
            .expect("handoff mutex poisoned")
            .failure
            .take()
    }

    /// Total condvar notifies that woke an actually-parked peer, both
    /// directions. Host-timing dependent (spins that succeed wake nobody).
    pub(crate) fn park_wakes(&self) -> u64 {
        self.slot.lock().expect("handoff mutex poisoned").park_wakes
    }
}

/// Exhaustive model checking of the handoff protocol (vendored loom shim).
///
/// Run with `RUSTFLAGS='--cfg loom' cargo test -p numagap-sim --lib loom_`.
/// Each test explores **every** interleaving of lock/condvar operations
/// between the kernel side, the process side, and shutdown; the model's
/// condvars never wake spuriously, so any reliance on a racy notify shows
/// up as a deadlock with the offending schedule attached.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use crate::time::SimTime;
    use crate::SimDuration;
    use loom::sync::Arc;
    use loom::thread;

    /// No lost wakeup on the grant path, and each grant is delivered
    /// exactly once: two grant/request rounds must complete under every
    /// interleaving (a lost or doubled grant deadlocks or trips the
    /// strict-alternation debug asserts).
    #[test]
    fn loom_two_rendezvous_rounds_deliver_each_grant_once() {
        loom::model(|| {
            let h = Arc::new(Handoff::new());
            let h2 = Arc::clone(&h);
            let proc_side = thread::spawn(move || {
                let g = h2.wait_grant();
                assert!(matches!(g, Grant::Proceed(t) if t == SimTime::from_nanos(7)));
                h2.send_request(Request::Compute(SimDuration::from_nanos(3)));
                let g = h2.wait_grant();
                assert!(matches!(g, Grant::Proceed(t) if t == SimTime::from_nanos(9)));
                h2.hangup();
            });
            h.grant(Grant::Proceed(SimTime::from_nanos(7)))
                .expect("process alive for first grant");
            match h.recv_request() {
                Ok(Request::Compute(d)) => assert_eq!(d, SimDuration::from_nanos(3)),
                other => panic!("wrong request, ok={}", other.is_ok()),
            }
            h.grant(Grant::Proceed(SimTime::from_nanos(9)))
                .expect("process alive for second grant");
            assert!(matches!(h.recv_request(), Err(Hangup)));
            proc_side.join().expect("process side");
        });
    }

    /// Shutdown racing a parked (or parking) kernel: `hangup` must wake a
    /// kernel waiting in `recv_request` under every interleaving — the
    /// schedule where the kernel checks `proc_gone`, then the hangup lands,
    /// then the kernel parks, is the classic lost-wakeup window.
    #[test]
    fn loom_hangup_always_wakes_a_waiting_kernel() {
        loom::model(|| {
            let h = Arc::new(Handoff::new());
            let h2 = Arc::clone(&h);
            let proc_side = thread::spawn(move || h2.hangup());
            assert!(matches!(h.recv_request(), Err(Hangup)));
            proc_side.join().expect("process side");
        });
    }

    /// A request published right before shutdown must never be lost to the
    /// concurrent hangup: the kernel drains the pending request first and
    /// only then observes `Hangup`, whatever the interleaving.
    #[test]
    fn loom_pending_request_wins_over_hangup() {
        loom::model(|| {
            let h = Arc::new(Handoff::new());
            let h2 = Arc::clone(&h);
            let proc_side = thread::spawn(move || {
                h2.send_request(Request::Compute(SimDuration::from_nanos(1)));
                h2.hangup();
            });
            match h.recv_request() {
                Ok(Request::Compute(d)) => assert_eq!(d, SimDuration::from_nanos(1)),
                other => panic!("request lost to hangup, ok={}", other.is_ok()),
            }
            assert!(matches!(h.recv_request(), Err(Hangup)));
            proc_side.join().expect("process side");
        });
    }

    /// Grant racing shutdown: under every interleaving the kernel either
    /// delivers the grant to a still-live process (which then consumes it
    /// and hangs up) or observes the hangup — never a silent drop on a live
    /// receiver, never a wake for a dead one.
    #[test]
    fn loom_grant_vs_hangup_is_delivered_or_reported() {
        loom::model(|| {
            let h = Arc::new(Handoff::new());
            let h2 = Arc::clone(&h);
            let proc_side = thread::spawn(move || {
                let g = h2.wait_grant();
                assert!(matches!(g, Grant::Proceed(t) if t == SimTime::from_nanos(5)));
                h2.hangup();
            });
            // The process only hangs up after consuming the grant, so the
            // kernel's publish must always succeed — Err(Hangup) here would
            // mean the slot died with a waiter still parked in wait_grant.
            h.grant(Grant::Proceed(SimTime::from_nanos(5)))
                .expect("grant must reach the waiting process");
            assert!(matches!(h.recv_request(), Err(Hangup)));
            proc_side.join().expect("process side");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::sync::Arc;

    #[test]
    fn request_and_grant_round_trip_across_threads() {
        let h = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let worker = std::thread::spawn(move || {
            // Process side: wait for a grant, answer with a request.
            let g = h2.wait_grant();
            assert!(matches!(g, Grant::Proceed(t) if t == SimTime::from_nanos(7)));
            h2.send_request(Request::Compute(crate::SimDuration::from_nanos(3)));
            h2.hangup();
        });
        h.grant(Grant::Proceed(SimTime::from_nanos(7))).unwrap();
        match h.recv_request() {
            Ok(Request::Compute(d)) => assert_eq!(d, crate::SimDuration::from_nanos(3)),
            other => panic!("unexpected: {:?}", other.is_ok()),
        }
        assert!(matches!(h.recv_request(), Err(Hangup)));
        worker.join().unwrap();
    }

    #[test]
    fn hangup_wakes_a_parked_kernel() {
        let h = Arc::new(Handoff::new());
        let h2 = Arc::clone(&h);
        let worker = std::thread::spawn(move || {
            // Give the kernel time to exhaust its spin budget and park.
            std::thread::sleep(std::time::Duration::from_millis(20));
            h2.hangup();
        });
        assert!(matches!(h.recv_request(), Err(Hangup)));
        worker.join().unwrap();
    }

    #[test]
    fn grant_after_hangup_reports_it() {
        let h = Handoff::new();
        h.hangup();
        assert!(matches!(h.grant(Grant::Abort), Err(Hangup)));
    }
}
