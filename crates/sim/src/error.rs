//! Error types for simulation runs.

use std::error::Error;
use std::fmt;

use crate::message::{Filter, Tag, TagFilter};
use crate::time::SimTime;

/// A message sitting unconsumed in a mailbox, summarized for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingMessage {
    /// Kernel-assigned message sequence number.
    pub seq: u64,
    /// Sender rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Declared wire bytes.
    pub wire_bytes: u64,
}

impl fmt::Display for PendingMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} from rank {} tag {} ({} B)",
            self.seq, self.src, self.tag, self.wire_bytes
        )
    }
}

/// Renders a receive filter compactly, e.g. `src=3 tag=internal+5`.
pub fn format_filter(filter: &Filter) -> String {
    let src = match filter.src {
        Some(p) => format!("src={}", p.0),
        None => "src=*".to_string(),
    };
    let tag = match &filter.tag {
        TagFilter::Any => "tag=*".to_string(),
        TagFilter::One(t) => format!("tag={t}"),
        TagFilter::Set(ts) => format!(
            "tag in {{{}}}",
            ts.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    };
    format!("{src} {tag}")
}

/// Why a process was idle when the simulation ground to a halt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitState {
    /// Blocked in `recv`; carries the posted filter and a snapshot of the
    /// messages sitting in the mailbox that the filter did *not* match.
    BlockedInRecv {
        /// The filter the process is waiting on.
        filter: Filter,
        /// Unconsumed mailbox contents at the time of the halt.
        mailbox: Vec<PendingMessage>,
    },
    /// Runnable (has a pending wake); never present in a true deadlock.
    Idle,
    /// Already exited normally.
    Exited,
}

impl fmt::Display for WaitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitState::BlockedInRecv { filter, mailbox } => {
                write!(f, "blocked in recv({})", format_filter(filter))?;
                if mailbox.is_empty() {
                    write!(f, ", mailbox empty")
                } else {
                    write!(f, ", mailbox holds ")?;
                    for (i, m) in mailbox.iter().enumerate() {
                        if i > 0 {
                            write!(f, "; ")?;
                        }
                        write!(f, "{m}")?;
                    }
                    Ok(())
                }
            }
            WaitState::Idle => write!(f, "idle"),
            WaitState::Exited => write!(f, "exited"),
        }
    }
}

/// Why a rank failed to produce a result.
///
/// Carried in its [`crate::RunOutcome::results`] slot so a mid-run panic
/// yields a per-rank diagnostic instead of shifting its peers' results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcFailure {
    /// Rank of the failed process.
    pub rank: usize,
    /// Rendered panic payload (or a placeholder for non-string payloads).
    pub message: String,
}

impl fmt::Display for ProcFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl Error for ProcFailure {}

/// An error that aborted a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// Every live process is blocked in `recv` and no events remain: the
    /// simulated program has deadlocked. Contains `(rank, wait state)` for
    /// every process and, when the blocked receives name specific senders,
    /// the cycle of the wait-for graph that closed the deadlock.
    Deadlock {
        /// Virtual time at which progress stopped.
        at: SimTime,
        /// Per-rank wait state.
        procs: Vec<(usize, WaitState)>,
        /// A cycle `r0 -> r1 -> .. -> r0` in the wait-for graph (each rank
        /// blocked on a message from the next), if one exists. Empty when
        /// the deadlock involves wildcard receives with no cyclic structure
        /// (e.g. everyone waiting on a message nobody sends).
        cycle: Vec<usize>,
    },
    /// The configured virtual-time limit was exceeded.
    TimeLimit {
        /// The limit that was hit.
        limit: SimTime,
    },
    /// A simulated process panicked; carries the rank and the panic message.
    ProcessPanicked {
        /// Rank of the panicking process.
        rank: usize,
        /// Rendered panic payload.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, procs, cycle } => {
                writeln!(f, "simulation deadlocked at {at}; process states:")?;
                for (rank, state) in procs {
                    writeln!(f, "  rank {rank}: {state}")?;
                }
                if !cycle.is_empty() {
                    let chain = cycle
                        .iter()
                        .chain(cycle.first())
                        .map(|r| format!("rank {r}"))
                        .collect::<Vec<_>>()
                        .join(" -> ");
                    writeln!(f, "wait-for cycle: {chain}")?;
                }
                Ok(())
            }
            SimError::TimeLimit { limit } => {
                write!(f, "virtual time limit of {limit} exceeded")
            }
            SimError::ProcessPanicked { rank, message } => {
                write!(f, "simulated process at rank {rank} panicked: {message}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcId;

    #[test]
    fn deadlock_display_lists_processes_and_cycle() {
        let e = SimError::Deadlock {
            at: SimTime::from_nanos(1_000),
            procs: vec![
                (
                    0,
                    WaitState::BlockedInRecv {
                        filter: Filter::tag(Tag::app(3)).from(ProcId(1)),
                        mailbox: vec![PendingMessage {
                            seq: 7,
                            src: 2,
                            tag: Tag::app(9),
                            wire_bytes: 128,
                        }],
                    },
                ),
                (1, WaitState::Exited),
            ],
            cycle: vec![0, 1],
        };
        let s = e.to_string();
        assert!(s.contains("rank 0: blocked in recv(src=1 tag=3)"), "{s}");
        assert!(
            s.contains("mailbox holds #7 from rank 2 tag 9 (128 B)"),
            "{s}"
        );
        assert!(s.contains("rank 1: exited"), "{s}");
        assert!(
            s.contains("wait-for cycle: rank 0 -> rank 1 -> rank 0"),
            "{s}"
        );
    }

    #[test]
    fn filter_formatting_covers_wildcards_and_sets() {
        assert_eq!(format_filter(&Filter::any()), "src=* tag=*");
        assert_eq!(
            format_filter(&Filter::one_of(&[Tag::app(1), Tag::app(2)])),
            "src=* tag in {1, 2}"
        );
    }

    #[test]
    fn panic_display_carries_message() {
        let e = SimError::ProcessPanicked {
            rank: 5,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("rank 5"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn time_limit_display() {
        let e = SimError::TimeLimit {
            limit: SimTime::from_nanos(5),
        };
        assert!(e.to_string().contains("limit"));
    }
}
