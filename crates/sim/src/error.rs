//! Error types for simulation runs.

use std::error::Error;
use std::fmt;

use crate::time::SimTime;

/// Why a process was idle when the simulation ground to a halt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitState {
    /// Blocked in `recv` with the given human-readable filter description.
    BlockedInRecv(String),
    /// Already exited normally.
    Exited,
}

impl fmt::Display for WaitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitState::BlockedInRecv(filter) => write!(f, "blocked in recv({filter})"),
            WaitState::Exited => write!(f, "exited"),
        }
    }
}

/// An error that aborted a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// Every live process is blocked in `recv` and no events remain: the
    /// simulated program has deadlocked. Contains `(rank, wait state)` for
    /// every process.
    Deadlock {
        /// Virtual time at which progress stopped.
        at: SimTime,
        /// Per-rank wait state.
        procs: Vec<(usize, WaitState)>,
    },
    /// The configured virtual-time limit was exceeded.
    TimeLimit {
        /// The limit that was hit.
        limit: SimTime,
    },
    /// A simulated process panicked; carries the rank and the panic message.
    ProcessPanicked {
        /// Rank of the panicking process.
        rank: usize,
        /// Rendered panic payload.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, procs } => {
                writeln!(f, "simulation deadlocked at {at}; process states:")?;
                for (rank, state) in procs {
                    writeln!(f, "  rank {rank}: {state}")?;
                }
                Ok(())
            }
            SimError::TimeLimit { limit } => {
                write!(f, "virtual time limit of {limit} exceeded")
            }
            SimError::ProcessPanicked { rank, message } => {
                write!(f, "simulated process at rank {rank} panicked: {message}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_lists_processes() {
        let e = SimError::Deadlock {
            at: SimTime::from_nanos(1_000),
            procs: vec![
                (0, WaitState::BlockedInRecv("tag=3".into())),
                (1, WaitState::Exited),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("rank 0: blocked in recv(tag=3)"));
        assert!(s.contains("rank 1: exited"));
    }

    #[test]
    fn panic_display_carries_message() {
        let e = SimError::ProcessPanicked {
            rank: 5,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("rank 5"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn time_limit_display() {
        let e = SimError::TimeLimit {
            limit: SimTime::from_nanos(5),
        };
        assert!(e.to_string().contains("limit"));
    }
}
