//! The N:M rank scheduler: multiplexes simulated ranks onto a worker pool.
//!
//! In the legacy 1:1 mode every rank is a dedicated OS thread parked on its
//! [`crate::handoff::Handoff`]; at thousands of ranks the thread stacks and
//! futex traffic dominate. Here each rank is instead a [`crate::fiber::Fiber`]
//! parked in a per-rank *gate*, and a small pool of `simworker-{i}` threads
//! resumes whichever ranks the kernel has granted.
//!
//! Determinism argument: the kernel is single-threaded and processes events
//! in canonical `(time, seq)` order; under strict rendezvous it grants at
//! most one rank at a time during normal operation, so the run queue never
//! holds more than one entry and the dispatch order *is* the grant order —
//! a pure function of the canonical event order, independent of worker
//! count. The worker pool changes which OS thread executes a rank's code,
//! never *when* in virtual time it executes. The kernel records the grant
//! sequence at its own (single-threaded) grant site when
//! [`crate::Sim::record_dispatch`] is enabled, so tests can pin exactly
//! that; the pool deliberately logs nothing — whether a grant finds the
//! fiber already parked is host timing.
//!
//! The gate state machine closes the wake/park races:
//!
//! ```text
//!   Parked(task) --wake--> Queued --worker pop--> Running
//!   Running --wake--> Notified          (grant landed mid-run)
//!   Running --fiber parks--> Parked     (no grant pending)
//!   Notified --fiber parks--> Running   (worker re-resumes immediately)
//!   Running --fiber returns--> Done
//! ```
//!
//! `wake` on a `Queued`/`Notified`/`Done` gate is a protocol violation
//! (double grant) and panics; the loom suite at the bottom of this module
//! explores every interleaving of the transitions above.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::fiber::Fiber;
use crate::sync::{spin_loop, yield_now as thread_yield, Condvar, Mutex};

/// How simulated ranks are mapped onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// One dedicated OS thread per rank (the original model). Kept as the
    /// differential oracle: virtual time must be bit-identical to the pool.
    LegacyThreads,
    /// Ranks are fibers multiplexed onto a fixed pool of worker threads.
    WorkerPool {
        /// Number of pool threads (clamped to at least 1).
        workers: usize,
    },
}

/// Process-global default [`SchedMode`] encoding for [`DEFAULT_MODE`]:
/// `usize::MAX` = unset, `0` = legacy, `n > 0` = pool with `n` workers.
const MODE_UNSET: usize = usize::MAX;
static DEFAULT_MODE: AtomicUsize = AtomicUsize::new(MODE_UNSET);

/// Sets the process-global default scheduler mode used by every
/// subsequently started [`crate::Sim`] that does not override it. Last
/// write wins; typically called once by the CLI from `--sim-workers`.
pub fn set_default_sched_mode(mode: SchedMode) {
    let enc = match mode {
        SchedMode::LegacyThreads => 0,
        SchedMode::WorkerPool { workers } => workers.clamp(1, usize::MAX - 1),
    };
    DEFAULT_MODE.store(enc, Ordering::Relaxed);
}

/// Resolves the effective default mode: the last value passed to
/// [`set_default_sched_mode`], else a single-worker pool where fibers are
/// supported and the legacy 1:1 mode elsewhere.
pub(crate) fn default_sched_mode() -> SchedMode {
    match DEFAULT_MODE.load(Ordering::Relaxed) {
        MODE_UNSET => {
            if crate::fiber::SUPPORTED {
                SchedMode::WorkerPool { workers: 1 }
            } else {
                SchedMode::LegacyThreads
            }
        }
        0 => SchedMode::LegacyThreads,
        n => SchedMode::WorkerPool { workers: n },
    }
}

/// Spin/yield budget before a worker parks on the run-queue condvar; a
/// single probe under loom (see the handoff module for the rationale).
#[cfg(not(loom))]
const SPIN: u32 = 192;
#[cfg(loom)]
const SPIN: u32 = 1;
#[cfg(not(loom))]
const YIELDS: u32 = 64;
#[cfg(loom)]
const YIELDS: u32 = 0;

/// Per-rank dispatch gate (see the module docs for the state machine).
enum Gate<T> {
    /// Rank is suspended and not granted; holds its execution context.
    Parked(T),
    /// Granted and sitting in the run queue.
    Queued,
    /// A worker is currently executing the rank.
    Running,
    /// A grant landed while the rank was running; re-resume on park.
    Notified,
    /// The rank's fiber ran to completion.
    Done,
}

struct QueueState<T> {
    ready: VecDeque<(usize, T)>,
    stop: bool,
    completed: usize,
    /// Condvar notifies that woke an actually-parked worker.
    park_wakes: u64,
    parked_workers: usize,
}

/// The scheduler's synchronized core, generic over the task payload so the
/// loom suite can model-check it with plain tokens instead of real fibers.
pub(crate) struct Core<T> {
    queue: Mutex<QueueState<T>>,
    work_cv: Condvar,
    done_cv: Condvar,
    gates: Vec<Mutex<Gate<T>>>,
}

impl<T> Core<T> {
    pub(crate) fn new(tasks: Vec<T>) -> Self {
        Core {
            gates: tasks
                .into_iter()
                .map(|t| Mutex::new(Gate::Parked(t)))
                .collect(),
            queue: Mutex::new(QueueState {
                ready: VecDeque::new(),
                stop: false,
                completed: 0,
                park_wakes: 0,
                parked_workers: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Kernel side: makes rank `p` runnable. Exactly one wake is issued per
    /// grant, so a gate that is already granted-but-undispatched is a
    /// protocol violation.
    pub(crate) fn wake(&self, p: usize) {
        let mut gate = self.gates[p].lock().expect("gate mutex poisoned");
        match std::mem::replace(&mut *gate, Gate::Queued) {
            Gate::Parked(task) => {
                drop(gate);
                let mut q = self.queue.lock().expect("run queue mutex poisoned");
                q.ready.push_back((p, task));
                if q.parked_workers > 0 {
                    q.park_wakes += 1;
                    drop(q);
                    self.work_cv.notify_one();
                }
            }
            Gate::Running => *gate = Gate::Notified,
            _ => unreachable!("wake delivered to a rank with an undispatched grant"),
        }
    }

    /// Worker side: takes the next runnable rank, spinning briefly before
    /// parking. Returns `None` once the scheduler is stopping.
    pub(crate) fn next(&self) -> Option<(usize, T)> {
        for i in 0..SPIN + YIELDS {
            if let Ok(mut q) = self.queue.try_lock() {
                if let Some(item) = q.ready.pop_front() {
                    return Some(item);
                }
                if q.stop {
                    return None;
                }
            }
            if i < SPIN {
                spin_loop();
            } else {
                thread_yield();
            }
        }
        let mut q = self.queue.lock().expect("run queue mutex poisoned");
        loop {
            if let Some(item) = q.ready.pop_front() {
                return Some(item);
            }
            if q.stop {
                return None;
            }
            q.parked_workers += 1;
            q = self.work_cv.wait(q).expect("run queue mutex poisoned");
            q.parked_workers -= 1;
        }
    }

    /// Worker side: transitions a just-popped rank `Queued -> Running`.
    pub(crate) fn begin(&self, p: usize) {
        let mut gate = self.gates[p].lock().expect("gate mutex poisoned");
        debug_assert!(
            matches!(&*gate, Gate::Queued),
            "dispatched rank not in the Queued state"
        );
        *gate = Gate::Running;
    }

    /// Worker side: the rank's fiber parked. Returns the task back when a
    /// grant landed mid-run (`Notified`): the worker must resume it again
    /// immediately instead of parking it.
    pub(crate) fn on_yield(&self, p: usize, task: T) -> Option<T> {
        let mut gate = self.gates[p].lock().expect("gate mutex poisoned");
        match &*gate {
            Gate::Running => {
                *gate = Gate::Parked(task);
                None
            }
            Gate::Notified => {
                *gate = Gate::Running;
                Some(task)
            }
            _ => unreachable!("parking rank in an invalid gate state"),
        }
    }

    /// Worker side: the rank's fiber ran to completion.
    pub(crate) fn on_finish(&self, p: usize) {
        {
            let mut gate = self.gates[p].lock().expect("gate mutex poisoned");
            *gate = Gate::Done;
        }
        let mut q = self.queue.lock().expect("run queue mutex poisoned");
        q.completed += 1;
        drop(q);
        self.done_cv.notify_all();
    }

    /// Kernel side: blocks until `n` ranks have finished.
    pub(crate) fn wait_done(&self, n: usize) {
        let mut q = self.queue.lock().expect("run queue mutex poisoned");
        while q.completed < n {
            q = self.done_cv.wait(q).expect("run queue mutex poisoned");
        }
    }

    /// Kernel side: tells idle workers to exit.
    pub(crate) fn stop(&self) {
        let mut q = self.queue.lock().expect("run queue mutex poisoned");
        q.stop = true;
        drop(q);
        self.work_cv.notify_all();
    }

    fn park_wakes(&self) -> u64 {
        self.queue
            .lock()
            .expect("run queue mutex poisoned")
            .park_wakes
    }
}

/// A rank's schedulable execution context: its fiber plus the pieces of
/// per-rank state that legacy mode kept in thread-locals and must now swap
/// in and out around every resume.
pub(crate) struct Task {
    /// The rank's suspended execution context.
    pub(crate) fiber: Fiber,
    /// Saved value of the thread-local payload-clone byte counter.
    pub(crate) clone_bytes: u64,
    /// Opaque per-rank thread-local state owned by an embedder (the runtime
    /// crate parks its lint sink here); swapped via the registered swapper.
    pub(crate) locals: Option<Box<dyn Any + Send>>,
}

/// Swaps a rank's opaque [`Task::locals`] with the embedder's thread-local
/// slot; called by a worker immediately before and after every resume.
pub(crate) type LocalsSwapFn = dyn Fn(&mut Option<Box<dyn Any + Send>>) + Send + Sync;

/// Shared, clonable handle to a [`LocalsSwapFn`].
pub(crate) type LocalsSwapper = Arc<LocalsSwapFn>;

/// Counters and instrumentation harvested from a finished pool.
pub(crate) struct SchedReport {
    /// Condvar notifies that woke an actually-parked worker (host-timing
    /// dependent, excluded from exact comparison like handoff park wakes).
    pub(crate) park_wakes: u64,
}

/// The worker pool driving rank fibers; owned by the kernel in
/// [`SchedMode::WorkerPool`] runs.
pub(crate) struct Scheduler {
    core: Arc<Core<Task>>,
    nranks: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns `workers` pool threads over the given rank tasks (one per
    /// rank, index = rank id, all initially parked and ungranted).
    pub(crate) fn new(workers: usize, tasks: Vec<Task>, swapper: Option<LocalsSwapper>) -> Self {
        let nranks = tasks.len();
        let core = Arc::new(Core::new(tasks));
        let workers = (0..workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                let swapper = swapper.clone();
                std::thread::Builder::new()
                    .name(format!("simworker-{i}"))
                    .spawn(move || worker_loop(&core, swapper.as_deref()))
                    .expect("failed to spawn simulator worker thread")
            })
            .collect();
        Scheduler {
            core,
            nranks,
            workers,
        }
    }

    /// Makes rank `p` runnable (the kernel just granted it).
    pub(crate) fn wake(&self, p: usize) {
        self.core.wake(p);
    }

    /// Waits for every rank fiber to finish, stops and joins the workers,
    /// and harvests the pool counters.
    pub(crate) fn finish(mut self) -> SchedReport {
        self.core.wait_done(self.nranks);
        self.core.stop();
        for h in self.workers.drain(..) {
            h.join().expect("simulator worker thread panicked");
        }
        SchedReport {
            park_wakes: self.core.park_wakes(),
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // Reached only when the kernel thread unwinds mid-run (a kernel
        // bug): stop the workers without waiting for rank completion so the
        // panic can propagate instead of deadlocking. Suspended fibers are
        // deallocated without being resumed (their stacks leak their
        // contents; see `Fiber`'s drop).
        self.core.stop();
        for h in self.workers.drain(..) {
            // A worker that itself panicked already poisoned the run; the
            // kernel's unwind is the report channel.
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("nranks", &self.nranks)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn worker_loop(core: &Core<Task>, swapper: Option<&LocalsSwapFn>) {
    while let Some((p, mut task)) = core.next() {
        core.begin(p);
        loop {
            // Swap the rank's saved thread-local state onto this worker for
            // the duration of the resume, and harvest it back afterwards —
            // the fiber may well resume on a different worker next time.
            crate::message::set_clone_bytes(task.clone_bytes);
            if let Some(swap) = swapper {
                swap(&mut task.locals);
            }
            let finished = task.fiber.resume();
            if let Some(swap) = swapper {
                swap(&mut task.locals);
            }
            task.clone_bytes = crate::message::clone_bytes();
            if finished {
                core.on_finish(p);
                break;
            }
            match core.on_yield(p, task) {
                // A grant landed while the rank was running: resume it
                // again right away (the single re-notify path).
                Some(renotified) => task = renotified,
                None => break,
            }
        }
    }
}

/// Exhaustive model checking of the run-queue/gate protocol (vendored loom
/// shim), alongside the handoff suite. Run with
/// `RUSTFLAGS='--cfg loom' cargo test -p numagap-sim --lib loom_`.
///
/// The models use a token payload instead of real fibers: the property
/// under test is the synchronization (no lost wakeup, no deadlock, single
/// grant resume), which is independent of what the task executes.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use loom::sync::Arc;
    use loom::thread;

    /// No lost wakeup between `wake` and a parking worker: the worker must
    /// receive the task and complete it under every interleaving, then see
    /// the stop flag and exit.
    #[test]
    fn loom_sched_wake_reaches_a_parking_worker() {
        loom::model(|| {
            let core = Arc::new(Core::new(vec![0u8]));
            let c2 = Arc::clone(&core);
            let worker = thread::spawn(move || {
                let (p, task) = c2.next().expect("task lost before stop");
                assert_eq!((p, task), (0, 0u8));
                c2.begin(p);
                c2.on_finish(p);
                assert!(c2.next().is_none());
            });
            core.wake(0);
            core.wait_done(1);
            core.stop();
            worker.join().expect("worker side");
        });
    }

    /// A wake racing the rank's own park (`on_yield`) must resolve to
    /// exactly one extra resume: either the worker observes `Notified` and
    /// re-runs the task itself, or the park wins and the wake queues the
    /// task for a normal dispatch — never both, never neither.
    #[test]
    fn loom_sched_wake_during_run_grants_exactly_one_resume() {
        loom::model(|| {
            let core = Arc::new(Core::new(vec![7u8]));
            core.wake(0);
            let c2 = Arc::clone(&core);
            let worker = thread::spawn(move || {
                let (p, task) = c2.next().expect("initial dispatch lost");
                c2.begin(p);
                // The kernel's next grant may only land once the rank is
                // actually running (strict rendezvous), so the racing wake
                // starts here: it contends with `on_yield` below.
                let c3 = Arc::clone(&c2);
                let kernel = thread::spawn(move || c3.wake(0));
                match c2.on_yield(p, task) {
                    // Notified path: the rank runs again on this worker.
                    Some(task) => assert_eq!(task, 7u8),
                    None => {
                        // Parked path: the concurrent wake must queue it.
                        let (p2, task) = c2.next().expect("re-granted task lost");
                        assert_eq!((p2, task), (p, 7u8));
                        c2.begin(p2);
                    }
                }
                c2.on_finish(p);
                kernel.join().expect("kernel side");
                assert!(c2.next().is_none());
            });
            core.wait_done(1);
            core.stop();
            worker.join().expect("worker side");
        });
    }

    /// Stop racing a parking worker: the worker must observe `stop` and
    /// exit under every interleaving (the check-then-park window is the
    /// classic lost-shutdown race).
    #[test]
    fn loom_sched_stop_always_releases_a_parking_worker() {
        loom::model(|| {
            let core: Arc<Core<u8>> = Arc::new(Core::new(vec![]));
            let c2 = Arc::clone(&core);
            let worker = thread::spawn(move || {
                assert!(c2.next().is_none());
            });
            core.stop();
            worker.join().expect("worker side");
        });
    }

    /// `wait_done` racing the final `on_finish` must never deadlock: the
    /// completion count and its notify are visible under every
    /// interleaving.
    #[test]
    fn loom_sched_wait_done_sees_final_completion() {
        loom::model(|| {
            let core = Arc::new(Core::new(vec![1u8]));
            core.wake(0);
            let c2 = Arc::clone(&core);
            let worker = thread::spawn(move || {
                let (p, _task) = c2.next().expect("dispatch lost");
                c2.begin(p);
                c2.on_finish(p);
                assert!(c2.next().is_none());
            });
            core.wait_done(1);
            core.stop();
            worker.join().expect("worker side");
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    /// Two workers draining a queue of token tasks: every task is
    /// dispatched exactly once and the pool shuts down cleanly.
    #[test]
    fn core_dispatches_each_wake_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let n = 16;
        let core = Arc::new(Core::new((0..n as u8).collect::<Vec<_>>()));
        let hits = Arc::new(AtomicU32::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let core = Arc::clone(&core);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    while let Some((p, task)) = core.next() {
                        assert_eq!(task as usize, p);
                        core.begin(p);
                        core.on_finish(p);
                        hits.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for p in 0..n {
            core.wake(p);
        }
        core.wait_done(n);
        core.stop();
        for w in workers {
            w.join().expect("worker panicked");
        }
        assert_eq!(hits.load(Ordering::SeqCst), n as u32);
    }

    #[test]
    fn default_mode_resolves_to_a_concrete_mode() {
        // Whatever the process-global setting currently is, the resolved
        // mode must be usable; on unsupported targets the pool never leaks
        // through the unset default.
        match default_sched_mode() {
            SchedMode::WorkerPool { workers } => {
                if !crate::fiber::SUPPORTED {
                    panic!("pool default leaked onto a fiber-less target");
                }
                assert!(workers >= 1);
            }
            SchedMode::LegacyThreads => {}
        }
    }
}
