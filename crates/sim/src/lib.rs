//! # numagap-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate for the reproduction of *"Sensitivity of
//! Parallel Applications to Large Differences in Bandwidth and Latency in
//! Two-Layer Interconnects"* (Plaat, Bal, Hofman, Kielmann; HPCA 1999). The
//! paper ran six parallel applications on a real 128-node testbed whose
//! inter-cluster links were slowed by delay loops; here, the whole machine is
//! simulated: every simulated processor is a real OS thread executing the
//! real application algorithm, but all of its communication and computation
//! *time* is virtual and charged by a pluggable [`Network`] cost model.
//!
//! Determinism is a core guarantee: the kernel runs exactly one process at a
//! time and orders all events by `(virtual time, sequence number)`, so runs
//! are bit-for-bit reproducible.
//!
//! ## Quick start
//!
//! ```
//! use numagap_sim::{Sim, IdealNetwork, SimDuration, Tag, Filter, ProcId};
//!
//! let mut sim = Sim::new(IdealNetwork::new(2, SimDuration::from_micros(20)));
//! sim.spawn(|ctx| {
//!     ctx.compute(SimDuration::from_millis(1));
//!     ctx.send(ProcId(1), Tag::app(0), 99u64, 8);
//! });
//! sim.spawn(|ctx| {
//!     let m = ctx.recv(Filter::tag(Tag::app(0)));
//!     m.expect_clone::<u64>()
//! });
//! let out = sim.run().unwrap();
//! let answer = out.results[1].as_ref().unwrap();
//! assert_eq!(*answer.downcast_ref::<u64>().unwrap(), 99);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod equeue;
mod error;
mod fiber;
mod handoff;
mod kernel;
mod mailbox;
mod message;
mod network;
mod observe;
mod process;
mod sched;
pub mod sync;
mod time;
mod trace;

pub use equeue::TieBreak;
pub use error::{format_filter, PendingMessage, ProcFailure, SimError, WaitState};
pub use kernel::{HotProfile, KernelStats, ProcStats, RunOutcome, Sim};
pub use message::{Filter, Message, Payload, Tag, TagFilter};
pub use network::{FaultDisposition, FaultEvent, FaultKind, IdealNetwork, Network, Transfer};
pub use observe::Observer;
pub use process::ProcCtx;
pub use sched::{set_default_sched_mode, SchedMode};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLog};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated processor (its rank, `0..nprocs`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcId(pub usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
