//! The network abstraction the kernel charges message transfers against.
//!
//! The kernel is generic over [`Network`] so the cost model is pluggable:
//! `numagap-net` provides the two-layer cluster/WAN model, and this module
//! provides [`IdealNetwork`], a trivial constant-delay model used in unit
//! tests and as the "perfectly uniform" baseline.

use crate::message::Tag;
use crate::time::{SimDuration, SimTime};
use crate::ProcId;

/// Timing outcome of handing one message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the *sender's CPU* becomes free again (send software overhead).
    pub sender_free: SimTime,
    /// When the message lands in the receiver's mailbox.
    pub arrival: SimTime,
}

/// What kind of fault the network injected into a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// The message was silently discarded and never delivered.
    Drop,
    /// A second copy of the message was delivered (later than the original).
    Duplicate,
    /// The message was delivered, but later than its fault-free arrival,
    /// allowing it to be overtaken by subsequent sends on the same pair.
    Delay,
}

impl FaultKind {
    /// Stable lower-case label used in logs and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
        }
    }
}

/// A fault the network injected, surfaced through [`crate::Observer::on_fault`].
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// What happened to the message.
    pub kind: FaultKind,
    /// Sender rank.
    pub src: ProcId,
    /// Destination rank.
    pub dst: ProcId,
    /// Kernel sequence number of the affected message (matches the `seq`
    /// passed to [`crate::Observer::on_send`]).
    pub seq: u64,
    /// The message tag.
    pub tag: Tag,
    /// Virtual time the message departed.
    pub at: SimTime,
    /// Why the fault fired (e.g. `"wan-drop"`, `"link-outage"`).
    pub cause: &'static str,
}

/// How the network disposed of one message under fault injection.
///
/// Returned by [`Network::fault_disposition`]; the kernel schedules one
/// delivery per entry in `arrivals` (zero entries = dropped).
#[derive(Debug, Clone)]
pub struct FaultDisposition {
    /// Mailbox arrival times, one delivery each. Empty means dropped.
    pub arrivals: Vec<SimTime>,
    /// The injected fault, if any. `None` means the fault-free single
    /// on-time delivery.
    pub kind: Option<FaultKind>,
    /// Short cause label for the fault event (ignored when `kind` is `None`).
    pub cause: &'static str,
}

impl FaultDisposition {
    /// The fault-free disposition: one delivery at the transfer's arrival.
    pub fn on_time(transfer: &Transfer) -> Self {
        FaultDisposition {
            arrivals: vec![transfer.arrival],
            kind: None,
            cause: "",
        }
    }

    /// The message is discarded.
    pub fn dropped(cause: &'static str) -> Self {
        FaultDisposition {
            arrivals: Vec::new(),
            kind: Some(FaultKind::Drop),
            cause,
        }
    }

    /// The message arrives on time and a duplicate copy arrives at `dup_at`.
    pub fn duplicated(transfer: &Transfer, dup_at: SimTime, cause: &'static str) -> Self {
        FaultDisposition {
            arrivals: vec![transfer.arrival, dup_at],
            kind: Some(FaultKind::Duplicate),
            cause,
        }
    }

    /// The single delivery is postponed to `at`.
    pub fn delayed(at: SimTime, cause: &'static str) -> Self {
        FaultDisposition {
            arrivals: vec![at],
            kind: Some(FaultKind::Delay),
            cause,
        }
    }
}

/// A pluggable message cost model.
///
/// Implementations are stateful: they track per-link occupancy so concurrent
/// transfers contend for bandwidth. `transfer` is called in deterministic
/// event order by the kernel.
pub trait Network: Send + 'static {
    /// Charges a `wire_bytes`-byte message from `src` to `dst` departing at
    /// `now`, updating internal link state.
    fn transfer(&mut self, src: ProcId, dst: ProcId, wire_bytes: u64, now: SimTime) -> Transfer;

    /// When the sender's CPU becomes free after handing a `wire_bytes`-byte
    /// message to the network at `now` — the sender-side software cost of
    /// the eventual [`Network::transfer`] call, computed *without* touching
    /// link state. The kernel resumes the sender from this value immediately
    /// and defers the link booking itself to the end of the timestamp, where
    /// bookings are replayed in canonical `(departure, rank, send index)`
    /// order so contention arbitration cannot observe event tiebreak order.
    /// Must equal the `sender_free` field of the `Transfer` later returned
    /// for the same message. Defaults to `now` (no sender-side overhead).
    fn sender_free(&self, wire_bytes: u64, now: SimTime) -> SimTime {
        let _ = wire_bytes;
        now
    }

    /// Number of processor endpoints this network connects.
    fn num_procs(&self) -> usize;

    /// Receiver-side software overhead charged when the application actually
    /// receives a message of this size. Defaults to zero.
    fn recv_overhead(&self, wire_bytes: u64) -> SimDuration {
        let _ = wire_bytes;
        SimDuration::ZERO
    }

    /// Whether this network may inject faults. When `false` (the default)
    /// the kernel never calls [`Network::fault_disposition`] and the event
    /// schedule is byte-identical to a build without fault support.
    fn faults_enabled(&self) -> bool {
        false
    }

    /// Decides the fate of one message under fault injection: deliver on
    /// time, drop, duplicate, or delay. Called by the kernel in deterministic
    /// event order, once per send, only when [`Network::faults_enabled`]
    /// returns `true`. `now` is the departure time used for outage windows.
    fn fault_disposition(
        &mut self,
        src: ProcId,
        dst: ProcId,
        tag: Tag,
        wire_bytes: u64,
        now: SimTime,
        transfer: &Transfer,
    ) -> FaultDisposition {
        let _ = (src, dst, tag, wire_bytes, now);
        FaultDisposition::on_time(transfer)
    }
}

/// A uniform network with constant per-message latency, infinite bandwidth
/// and zero sender overhead. Deliveries never contend.
///
/// # Examples
///
/// ```
/// use numagap_sim::{IdealNetwork, Network, ProcId, SimDuration, SimTime};
///
/// let mut net = IdealNetwork::new(4, SimDuration::from_micros(1));
/// let t = net.transfer(ProcId(0), ProcId(1), 1024, SimTime::ZERO);
/// assert_eq!(t.arrival, SimTime::ZERO + SimDuration::from_micros(1));
/// assert_eq!(t.sender_free, SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct IdealNetwork {
    procs: usize,
    latency: SimDuration,
}

impl IdealNetwork {
    /// Creates an ideal network over `procs` endpoints with fixed `latency`.
    pub fn new(procs: usize, latency: SimDuration) -> Self {
        IdealNetwork { procs, latency }
    }

    /// Creates a zero-latency network (messages arrive "instantly", but still
    /// in deterministic event order).
    pub fn instantaneous(procs: usize) -> Self {
        Self::new(procs, SimDuration::ZERO)
    }
}

impl Network for IdealNetwork {
    fn transfer(&mut self, _src: ProcId, _dst: ProcId, _wire_bytes: u64, now: SimTime) -> Transfer {
        Transfer {
            sender_free: now,
            arrival: now + self.latency,
        }
    }

    fn num_procs(&self) -> usize {
        self.procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_network_is_stateless() {
        let mut net = IdealNetwork::new(2, SimDuration::from_nanos(10));
        let a = net.transfer(ProcId(0), ProcId(1), 1, SimTime::ZERO);
        let b = net.transfer(ProcId(0), ProcId(1), 1_000_000, SimTime::ZERO);
        assert_eq!(a, b, "size must not affect an infinite-bandwidth network");
    }

    #[test]
    fn instantaneous_delivers_at_now() {
        let mut net = IdealNetwork::instantaneous(2);
        let t = net.transfer(ProcId(1), ProcId(0), 64, SimTime::from_nanos(5));
        assert_eq!(t.arrival, SimTime::from_nanos(5));
    }

    #[test]
    fn num_procs_reported() {
        assert_eq!(IdealNetwork::instantaneous(7).num_procs(), 7);
    }
}
