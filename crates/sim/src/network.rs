//! The network abstraction the kernel charges message transfers against.
//!
//! The kernel is generic over [`Network`] so the cost model is pluggable:
//! `numagap-net` provides the two-layer cluster/WAN model, and this module
//! provides [`IdealNetwork`], a trivial constant-delay model used in unit
//! tests and as the "perfectly uniform" baseline.

use crate::time::{SimDuration, SimTime};
use crate::ProcId;

/// Timing outcome of handing one message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the *sender's CPU* becomes free again (send software overhead).
    pub sender_free: SimTime,
    /// When the message lands in the receiver's mailbox.
    pub arrival: SimTime,
}

/// A pluggable message cost model.
///
/// Implementations are stateful: they track per-link occupancy so concurrent
/// transfers contend for bandwidth. `transfer` is called in deterministic
/// event order by the kernel.
pub trait Network: Send + 'static {
    /// Charges a `wire_bytes`-byte message from `src` to `dst` departing at
    /// `now`, updating internal link state.
    fn transfer(&mut self, src: ProcId, dst: ProcId, wire_bytes: u64, now: SimTime) -> Transfer;

    /// Number of processor endpoints this network connects.
    fn num_procs(&self) -> usize;

    /// Receiver-side software overhead charged when the application actually
    /// receives a message of this size. Defaults to zero.
    fn recv_overhead(&self, wire_bytes: u64) -> SimDuration {
        let _ = wire_bytes;
        SimDuration::ZERO
    }
}

/// A uniform network with constant per-message latency, infinite bandwidth
/// and zero sender overhead. Deliveries never contend.
///
/// # Examples
///
/// ```
/// use numagap_sim::{IdealNetwork, Network, ProcId, SimDuration, SimTime};
///
/// let mut net = IdealNetwork::new(4, SimDuration::from_micros(1));
/// let t = net.transfer(ProcId(0), ProcId(1), 1024, SimTime::ZERO);
/// assert_eq!(t.arrival, SimTime::ZERO + SimDuration::from_micros(1));
/// assert_eq!(t.sender_free, SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct IdealNetwork {
    procs: usize,
    latency: SimDuration,
}

impl IdealNetwork {
    /// Creates an ideal network over `procs` endpoints with fixed `latency`.
    pub fn new(procs: usize, latency: SimDuration) -> Self {
        IdealNetwork { procs, latency }
    }

    /// Creates a zero-latency network (messages arrive "instantly", but still
    /// in deterministic event order).
    pub fn instantaneous(procs: usize) -> Self {
        Self::new(procs, SimDuration::ZERO)
    }
}

impl Network for IdealNetwork {
    fn transfer(&mut self, _src: ProcId, _dst: ProcId, _wire_bytes: u64, now: SimTime) -> Transfer {
        Transfer {
            sender_free: now,
            arrival: now + self.latency,
        }
    }

    fn num_procs(&self) -> usize {
        self.procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_network_is_stateless() {
        let mut net = IdealNetwork::new(2, SimDuration::from_nanos(10));
        let a = net.transfer(ProcId(0), ProcId(1), 1, SimTime::ZERO);
        let b = net.transfer(ProcId(0), ProcId(1), 1_000_000, SimTime::ZERO);
        assert_eq!(a, b, "size must not affect an infinite-bandwidth network");
    }

    #[test]
    fn instantaneous_delivers_at_now() {
        let mut net = IdealNetwork::instantaneous(2);
        let t = net.transfer(ProcId(1), ProcId(0), 64, SimTime::from_nanos(5));
        assert_eq!(t.arrival, SimTime::from_nanos(5));
    }

    #[test]
    fn num_procs_reported() {
        assert_eq!(IdealNetwork::instantaneous(7).num_procs(), 7);
    }
}
