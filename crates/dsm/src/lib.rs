//! # numagap-dsm — a miniature distributed shared memory
//!
//! The DAS could be programmed through software DSMs (TreadMarks, CRL) as
//! well as message passing; this crate provides a small, deterministic
//! DSM-flavoured abstraction over the simulated machine so that programming
//! model can be explored too: a [`Replicated<T, U>`] object is replicated on
//! every rank, *reads are local*, and writes are typed update operations
//! that become visible at the next [`Replicated::fence`] — release
//! consistency, in the spirit of TreadMarks.
//!
//! At a fence every rank's pending updates are exchanged (point-to-point on
//! a uniform machine, or combined per cluster and unpacked by gateway-rank
//! relays on a two-layer machine — the same cluster-aware structure as the
//! paper's application optimizations), then applied everywhere in one
//! deterministic global order `(writer rank, issue index)`. Replicas
//! therefore stay bit-for-bit identical across ranks, regardless of the
//! interconnect.
//!
//! ```
//! use numagap_dsm::{Replicated, Update};
//! use numagap_net::das_spec;
//! use numagap_rt::Machine;
//!
//! #[derive(Clone)]
//! struct Add(u64);
//! impl Update<u64> for Add {
//!     fn apply(&self, state: &mut u64) {
//!         *state += self.0;
//!     }
//!     fn wire_bytes(&self) -> u64 {
//!         8
//!     }
//! }
//!
//! let machine = Machine::new(das_spec(2, 2, 5.0, 1.0));
//! let report = machine.run(|ctx| {
//!     let mut counter = Replicated::new(0, 0u64);
//!     counter.write(Add(ctx.rank() as u64 + 1));
//!     counter.fence(ctx);
//!     *counter.read()
//! }).unwrap();
//! // 1 + 2 + 3 + 4 on every rank.
//! assert_eq!(report.results, vec![10, 10, 10, 10]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::any::Any;
use std::collections::BTreeMap;

use numagap_rt::tags::service_tag;
use numagap_rt::{Barrier, Ctx};
use numagap_sim::{Filter, Tag};

/// A typed update operation on a replicated object.
///
/// Updates must be deterministic pure functions of `(self, state)`: they are
/// re-executed independently on every replica.
pub trait Update<T>: Clone + Send + Sync + 'static {
    /// Applies the update to a replica.
    fn apply(&self, state: &mut T);

    /// Bytes this update occupies on the wire (default 16).
    fn wire_bytes(&self) -> u64 {
        16
    }
}

/// One update in flight: `(writer rank, writer-local issue index, op)`.
type Stamped<U> = (u32, u64, U);

const DSM_TAG_BASE: u32 = 0x2000;
const MAX_OBJECTS: u32 = 256;

/// A replicated shared object with release consistency.
///
/// Every rank must construct the object with the same `id` and initial
/// state, and call [`Replicated::fence`] the same number of times.
/// See the crate docs for the consistency model.
pub struct Replicated<T, U> {
    id: u32,
    state: T,
    issued: u64,
    epoch: u64,
    pending: Vec<U>,
    barrier: Barrier,
}

impl<T: std::fmt::Debug, U> std::fmt::Debug for Replicated<T, U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicated")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("issued", &self.issued)
            .field("epoch", &self.epoch)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<T, U> Replicated<T, U>
where
    T: Send + Sync + 'static,
    U: Update<T> + Any,
{
    /// Creates replica `id` (`< 256`) with the given initial state. All
    /// ranks must use identical arguments.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 256`.
    pub fn new(id: u32, initial: T) -> Self {
        assert!(id < MAX_OBJECTS, "object id {id} out of range");
        Replicated {
            id,
            state: initial,
            issued: 0,
            epoch: 0,
            pending: Vec::new(),
            barrier: Barrier::new(256 + id),
        }
    }

    /// Reads the local replica. Free of communication; sees exactly the
    /// updates made visible by fences (plus none of the writes buffered
    /// since, including this rank's own).
    pub fn read(&self) -> &T {
        &self.state
    }

    /// Issues an update. Buffered locally until the next [`Replicated::fence`].
    pub fn write(&mut self, update: U) {
        self.pending.push(update);
        self.issued += 1;
    }

    /// Number of updates buffered locally (not yet exchanged).
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    fn data_tag(&self) -> Tag {
        // Epoch folded in so consecutive fences never cross-talk.
        service_tag(DSM_TAG_BASE + self.id * 0x2000 + (self.epoch % 0x1000) as u32 * 2)
    }

    fn relay_tag(&self) -> Tag {
        service_tag(DSM_TAG_BASE + self.id * 0x2000 + (self.epoch % 0x1000) as u32 * 2 + 1)
    }

    /// The release fence: exchanges all ranks' buffered updates and applies
    /// them everywhere in the deterministic global order
    /// `(writer rank, issue index)`. Acts as a global synchronization point.
    ///
    /// On a multi-cluster machine, updates bound for a remote cluster are
    /// combined into one wide-area message and fanned out by that cluster's
    /// gateway rank (cluster-aware, like the paper's optimizations).
    pub fn fence(&mut self, ctx: &mut Ctx<'_>) {
        let p = ctx.nprocs();
        let me = ctx.rank();
        let data_tag = self.data_tag();
        let relay_tag = self.relay_tag();
        let base = self.issued - self.pending.len() as u64;
        let stamped: Vec<Stamped<U>> = self
            .pending
            .drain(..)
            .enumerate()
            .map(|(i, u)| (me as u32, base + i as u64, u))
            .collect();
        let bytes: u64 = stamped.iter().map(|(_, _, u)| 12 + u.wire_bytes()).sum();

        // Ship my batch: direct to my cluster, once per remote cluster.
        let topo = ctx.topology().clone();
        let my_cluster = ctx.cluster();
        for &q in topo.members(my_cluster) {
            if q != me {
                ctx.send(q, data_tag, stamped.clone(), bytes);
            }
        }
        for c in 0..topo.nclusters() {
            if c != my_cluster {
                ctx.send(topo.cluster_root(c), relay_tag, stamped.clone(), bytes);
            }
        }

        // Collect everyone else's batches; gateway ranks also fan incoming
        // relay bundles out to their cluster.
        let csize = topo.members(my_cluster).len();
        let i_am_relay = me == topo.cluster_root(my_cluster);
        let mut relays_left = if i_am_relay { p - csize } else { 0 };
        let mut batches_left = p - 1;
        let mut all: Vec<Stamped<U>> = stamped;
        while batches_left > 0 || relays_left > 0 {
            let msg = ctx.recv(Filter::one_of(&[data_tag, relay_tag]));
            let batch = msg.expect_ref::<Vec<Stamped<U>>>().clone();
            if msg.tag == relay_tag {
                relays_left -= 1;
                let bytes: u64 = batch.iter().map(|(_, _, u)| 12 + u.wire_bytes()).sum();
                for &q in topo.members(my_cluster) {
                    if q != me {
                        ctx.send(q, data_tag, batch.clone(), bytes);
                    }
                }
                batches_left -= 1;
                all.extend(batch);
            } else {
                batches_left -= 1;
                all.extend(batch);
            }
        }

        // Deterministic global order.
        all.sort_by_key(|(w, i, _)| (*w, *i));
        for (_, _, u) in &all {
            u.apply(&mut self.state);
        }
        self.epoch += 1;
        // Leave no stragglers behind: the fence is also a barrier, so the
        // next epoch's messages can never overtake this epoch's processing.
        self.barrier.wait(ctx);
    }

    /// Completed fences so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A convenience update for counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AddU64(pub u64);

impl Update<u64> for AddU64 {
    fn apply(&self, state: &mut u64) {
        *state += self.0;
    }
    fn wire_bytes(&self) -> u64 {
        8
    }
}

/// A convenience update for replicated maps: insert/overwrite a key.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MapPut<K, V> {
    /// Key to write.
    pub key: K,
    /// Value to store.
    pub value: V,
}

impl<K, V> Update<BTreeMap<K, V>> for MapPut<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn apply(&self, state: &mut BTreeMap<K, V>) {
        state.insert(self.key.clone(), self.value.clone());
    }
    fn wire_bytes(&self) -> u64 {
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numagap_net::{das_spec, uniform_spec, Topology, TwoLayerSpec};
    use numagap_rt::Machine;

    #[test]
    fn counter_converges_everywhere() {
        for machine in [
            Machine::new(uniform_spec(4)),
            Machine::new(das_spec(2, 3, 5.0, 1.0)),
            Machine::new(TwoLayerSpec::new(Topology::new(&[1, 3, 2]))),
        ] {
            let p = machine.spec().topology.nprocs();
            let report = machine
                .run(|ctx| {
                    let mut c = Replicated::new(0, 0u64);
                    c.write(AddU64(ctx.rank() as u64 + 1));
                    c.fence(ctx);
                    *c.read()
                })
                .unwrap();
            let expected: u64 = (1..=p as u64).sum();
            assert_eq!(report.results, vec![expected; p]);
        }
    }

    #[test]
    fn reads_are_stale_until_the_fence() {
        let machine = Machine::new(das_spec(2, 2, 5.0, 1.0));
        machine
            .run(|ctx| {
                let mut c = Replicated::new(0, 0u64);
                c.write(AddU64(5));
                // Release consistency: even the local write is invisible
                // before the fence.
                assert_eq!(*c.read(), 0);
                assert_eq!(c.buffered(), 1);
                c.fence(ctx);
                assert_eq!(*c.read(), 5 * ctx.nprocs() as u64);
                assert_eq!(c.buffered(), 0);
            })
            .unwrap();
    }

    #[test]
    fn replicas_are_bit_identical_across_epochs() {
        let machine = Machine::new(das_spec(4, 2, 2.0, 0.5));
        let report = machine
            .run(|ctx| {
                let mut map = Replicated::new(1, BTreeMap::<u32, u64>::new());
                for round in 0..5u64 {
                    map.write(MapPut {
                        key: (ctx.rank() as u32) * 100 + round as u32,
                        value: round * 7,
                    });
                    // Conflicting key written by everyone: the global order
                    // must resolve it identically everywhere.
                    map.write(MapPut {
                        key: 9999,
                        value: ctx.rank() as u64 + round,
                    });
                    map.fence(ctx);
                }
                map.read().clone()
            })
            .unwrap();
        let first = &report.results[0];
        assert_eq!(first.len(), 8 * 5 + 1);
        for replica in &report.results[1..] {
            assert_eq!(replica, first);
        }
        // Conflict resolution: the highest (writer, issue) pair wins — the
        // last writer in global order is rank 7 at round 4.
        assert_eq!(first[&9999], 7 + 4);
    }

    #[test]
    fn multiple_objects_coexist() {
        let machine = Machine::new(das_spec(2, 2, 1.0, 1.0));
        machine
            .run(|ctx| {
                let mut a = Replicated::new(2, 0u64);
                let mut b = Replicated::new(3, 100u64);
                a.write(AddU64(1));
                b.write(AddU64(2));
                a.fence(ctx);
                b.fence(ctx);
                assert_eq!(*a.read(), ctx.nprocs() as u64);
                assert_eq!(*b.read(), 100 + 2 * ctx.nprocs() as u64);
                assert_eq!(a.epoch(), 1);
            })
            .unwrap();
    }

    #[test]
    fn updates_cross_each_wan_link_once_per_writer() {
        let machine = Machine::new(das_spec(4, 4, 5.0, 1.0));
        let report = machine
            .run(|ctx| {
                let mut c = Replicated::new(0, 0u64);
                c.write(AddU64(1));
                c.fence(ctx);
                *c.read()
            })
            .unwrap();
        assert_eq!(report.results[0], 16);
        // Each of 16 writers ships one bundle to each of 3 remote clusters;
        // the dissemination barrier adds a few more.
        let expected_update_msgs = 16 * 3;
        assert!(
            report.net_stats.inter_msgs >= expected_update_msgs
                && report.net_stats.inter_msgs <= expected_update_msgs + 64,
            "inter msgs {}",
            report.net_stats.inter_msgs
        );
    }

    #[test]
    fn empty_fences_are_fine() {
        let machine = Machine::new(das_spec(2, 2, 1.0, 1.0));
        machine
            .run(|ctx| {
                let mut c = Replicated::<u64, AddU64>::new(0, 0u64);
                c.fence(ctx);
                c.fence(ctx);
                assert_eq!(*c.read(), 0);
                assert_eq!(c.epoch(), 2);
            })
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn object_id_bounds() {
        let _ = Replicated::<u64, AddU64>::new(256, 0);
    }
}
