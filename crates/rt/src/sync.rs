//! Synchronization primitives: dissemination barrier and sequencer service.

use numagap_sim::{Message, Tag};

use crate::ctx::Ctx;
use crate::tags::BARRIER_BLOCK;

const GEN_SLOTS: u32 = 1024;
const MAX_ROUNDS: u32 = 32;
const MAX_BARRIER_IDS: u32 = 512;

/// A reusable global barrier (dissemination algorithm, `log2(p)` rounds).
///
/// Every rank must construct the barrier with the same `id` and call
/// [`Barrier::wait`] the same number of times. Distinct concurrent barriers
/// need distinct ids.
///
/// # Examples
///
/// ```
/// use numagap_rt::{Machine, Barrier};
/// use numagap_net::uniform_spec;
///
/// let machine = Machine::new(uniform_spec(4));
/// machine.run(|ctx| {
///     let mut barrier = Barrier::new(0);
///     for _ in 0..3 {
///         barrier.wait(ctx);
///     }
/// }).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Barrier {
    id: u32,
    generation: u64,
}

impl Barrier {
    /// Creates barrier `id` (must be `< 512` and identical on every rank).
    ///
    /// # Panics
    ///
    /// Panics if `id >= 512`.
    pub fn new(id: u32) -> Self {
        assert!(id < MAX_BARRIER_IDS, "barrier id {id} out of range");
        Barrier { id, generation: 0 }
    }

    /// Completed generations so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn tag(&self, round: u32) -> Tag {
        let gen_slot = (self.generation % GEN_SLOTS as u64) as u32;
        Tag::internal(
            BARRIER_BLOCK + self.id * GEN_SLOTS * MAX_ROUNDS + gen_slot * MAX_ROUNDS + round,
        )
    }

    /// Blocks until every rank has entered this barrier generation.
    pub fn wait(&mut self, ctx: &mut Ctx<'_>) {
        let p = ctx.nprocs();
        let me = ctx.rank();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let tag = self.tag(round);
            let to = (me + dist) % p;
            let from = (me + p - dist % p) % p;
            ctx.send(to, tag, (), 1);
            let _ = ctx.recv_from(from, tag);
            round += 1;
            dist <<= 1;
        }
        self.generation += 1;
    }
}

impl Drop for Barrier {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            crate::lint::report(crate::lint::LintRecord::BarrierGeneration {
                id: self.id,
                generation: self.generation,
            });
        }
    }
}

/// Server half of a totally-ordered-broadcast sequencer (as used by the
/// Orca runtime for ASP's ordered row broadcasts).
///
/// The owner answers [`get_seq`] RPCs with consecutive sequence numbers.
/// Ownership can migrate: the counter is plain state that the application
/// transfers in a message (the ASP optimization).
#[derive(Debug, Clone, Default)]
pub struct SequencerServer {
    next: u64,
}

impl SequencerServer {
    /// A sequencer starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resumes a migrated sequencer at `next`.
    pub fn resume(next: u64) -> Self {
        SequencerServer { next }
    }

    /// The next sequence number to be issued (for migration).
    pub fn next_value(&self) -> u64 {
        self.next
    }

    /// Issues the next number locally (owner granting itself a number,
    /// without a message).
    pub fn issue_local(&mut self) -> u64 {
        let n = self.next;
        self.next += 1;
        n
    }

    /// Serves one received `get_seq` request message.
    pub fn serve(&mut self, ctx: &mut Ctx<'_>, request: &Message) {
        let n = self.issue_local();
        ctx.reply(request, n, 8);
    }
}

/// Client half: blocking RPC to the sequencer owner. `service_tag` must be
/// the tag the owner is serving on.
pub fn get_seq(ctx: &mut Ctx<'_>, owner: usize, service_tag: Tag) -> u64 {
    ctx.rpc::<(), u64>(owner, service_tag, (), 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::service_tag;
    use crate::Machine;
    use numagap_net::{das_spec, uniform_spec};
    use numagap_sim::Filter;

    #[test]
    fn barrier_synchronizes_uneven_workers() {
        let machine = Machine::new(uniform_spec(4));
        let report = machine
            .run(|ctx| {
                let mut barrier = Barrier::new(1);
                // Rank i computes i ms before entering.
                ctx.compute(numagap_sim::SimDuration::from_millis(ctx.rank() as u64));
                let entered = ctx.now();
                barrier.wait(ctx);
                (entered, ctx.now())
            })
            .unwrap();
        let last_entry = report.results.iter().map(|(e, _)| *e).max().unwrap();
        let first_exit = report.results.iter().map(|(_, x)| *x).min().unwrap();
        assert!(
            first_exit >= last_entry,
            "no rank may leave before the slowest enters"
        );
    }

    #[test]
    fn repeated_barriers_do_not_cross_talk() {
        let machine = Machine::new(das_spec(2, 2, 0.5, 6.0));
        machine
            .run(|ctx| {
                let mut barrier = Barrier::new(0);
                for i in 0..20u64 {
                    if ctx.rank() == (i as usize) % ctx.nprocs() {
                        ctx.compute(numagap_sim::SimDuration::from_micros(100));
                    }
                    barrier.wait(ctx);
                }
                assert_eq!(barrier.generation(), 20);
            })
            .unwrap();
    }

    #[test]
    fn single_process_barrier_is_noop() {
        let machine = Machine::new(uniform_spec(1));
        machine
            .run(|ctx| {
                let mut barrier = Barrier::new(0);
                barrier.wait(ctx);
                barrier.wait(ctx);
            })
            .unwrap();
    }

    #[test]
    fn sequencer_issues_consecutive_numbers() {
        let machine = Machine::new(uniform_spec(3));
        let tag = service_tag(7);
        let report = machine
            .run(move |ctx| {
                if ctx.rank() == 0 {
                    let mut seq = SequencerServer::new();
                    // Serve 4 requests (2 from each client).
                    for _ in 0..4 {
                        let req = ctx.recv(Filter::tag(tag));
                        seq.serve(ctx, &req);
                    }
                    vec![]
                } else {
                    vec![get_seq(ctx, 0, tag), get_seq(ctx, 0, tag)]
                }
            })
            .unwrap();
        let mut all: Vec<u64> = report.results.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sequencer_migration_resumes_counter() {
        let mut s = SequencerServer::new();
        assert_eq!(s.issue_local(), 0);
        assert_eq!(s.issue_local(), 1);
        let mut moved = SequencerServer::resume(s.next_value());
        assert_eq!(moved.issue_local(), 2);
    }
}
