//! Internal tag-space layout.
//!
//! The simulator reserves tags at and above [`Tag::INTERNAL_BASE`] for
//! runtime protocols. This module carves that space into non-overlapping
//! blocks so barriers, RPC replies, collectives and relays can never collide
//! with each other or with application tags.

use numagap_sim::Tag;

/// Block size: each protocol family gets 2^24 internal tag values.
pub const BLOCK: u32 = 1 << 24;

/// Dissemination-barrier tags.
pub const BARRIER_BLOCK: u32 = 0;
/// RPC reply tags (one per caller rank).
pub const RPC_BLOCK: u32 = BLOCK;
/// Collective-operation tags (managed by `numagap-collectives`).
pub const COLL_BLOCK: u32 = 2 * BLOCK;
/// Cluster-relay tags used by two-level message combining.
pub const RELAY_BLOCK: u32 = 3 * BLOCK;
/// Runtime-internal application protocols (sequencers, work queues).
pub const SERVICE_BLOCK: u32 = 4 * BLOCK;
/// Reliable-transport acknowledgements (see `crate::reliable`).
pub const ACK_BLOCK: u32 = 5 * BLOCK;

/// The tag all reliable-transport acknowledgements travel on. Fault plans
/// exempt this block so the control plane stays dependable; data envelopes
/// ride the application's own tags.
pub const ACK_TAG: Tag = Tag::internal_const(ACK_BLOCK);

/// The RPC reply tag for a given caller rank.
///
/// Each rank has at most one outstanding RPC at a time (calls are blocking),
/// so one reply tag per rank suffices.
pub fn rpc_reply_tag(caller_rank: usize) -> Tag {
    Tag::internal(RPC_BLOCK + caller_rank as u32)
}

/// A tag in the collectives block.
pub fn coll_tag(offset: u32) -> Tag {
    assert!(
        offset < BLOCK,
        "collective tag offset {offset} out of block"
    );
    Tag::internal(COLL_BLOCK + offset)
}

/// A tag in the relay block.
pub fn relay_tag(offset: u32) -> Tag {
    assert!(offset < BLOCK, "relay tag offset {offset} out of block");
    Tag::internal(RELAY_BLOCK + offset)
}

/// A tag in the service block (sequencers, work queues, app services).
pub fn service_tag(offset: u32) -> Tag {
    assert!(offset < BLOCK, "service tag offset {offset} out of block");
    Tag::internal(SERVICE_BLOCK + offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_do_not_overlap() {
        let a = rpc_reply_tag(0).raw();
        let b = coll_tag(0).raw();
        let c = relay_tag(0).raw();
        let d = service_tag(0).raw();
        let e = ACK_TAG.raw();
        assert!(a < b && b < c && c < d && d < e);
        assert!(rpc_reply_tag(BLOCK as usize - 1).raw() < b);
    }

    #[test]
    #[should_panic(expected = "out of block")]
    fn coll_tag_bounds_checked() {
        let _ = coll_tag(BLOCK);
    }
}
