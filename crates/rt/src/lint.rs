//! Runtime-level protocol lints.
//!
//! Some defects are invisible to the kernel event stream because they live
//! in runtime abstractions: a combining buffer dropped with items still
//! queued sends nothing (so no observer event exists to flag), and barrier
//! epoch skew is only meaningful when compared *across* ranks after the run.
//!
//! Each simulated process thread gets a thread-local sink, armed by
//! [`crate::Machine`] around the rank entry function. Runtime primitives
//! report into it from their `Drop` impls; the records come back per rank in
//! [`crate::RunReport::rank_lints`], where `numagap-analysis` turns them
//! into diagnostics.

use std::cell::RefCell;
use std::fmt;

use numagap_sim::Tag;

/// One runtime lint observation on one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintRecord {
    /// A combining buffer was dropped while still holding unsent items.
    UnflushedCombiner {
        /// The tag batches would have been delivered under.
        data_tag: Tag,
        /// Items lost in the buffer.
        buffered: usize,
    },
    /// Final generation a [`crate::Barrier`] reached on this rank; compared
    /// across ranks to detect epoch mismatches.
    BarrierGeneration {
        /// The barrier id.
        id: u32,
        /// Generations completed when the barrier was dropped.
        generation: u64,
    },
    /// The reliable transport still held received-but-never-consumed
    /// messages when the rank finished: the application exited without
    /// receiving everything its peers sent it.
    TransportUndelivered {
        /// Messages left in the transport's delivery buffer and
        /// reorder stash.
        buffered: usize,
    },
}

impl fmt::Display for LintRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintRecord::UnflushedCombiner { data_tag, buffered } => write!(
                f,
                "combiner for tag {data_tag} dropped with {buffered} unflushed item(s)"
            ),
            LintRecord::BarrierGeneration { id, generation } => {
                write!(f, "barrier {id} finished at generation {generation}")
            }
            LintRecord::TransportUndelivered { buffered } => write!(
                f,
                "rank finished with {buffered} transport-delivered message(s) never received"
            ),
        }
    }
}

thread_local! {
    static SINK: RefCell<Option<Vec<LintRecord>>> = const { RefCell::new(None) };
}

/// Arms collection on the current thread (one simulated process).
pub(crate) fn arm() {
    SINK.with(|s| *s.borrow_mut() = Some(Vec::new()));
}

/// Disarms collection and returns everything recorded since [`arm`].
pub(crate) fn take() -> Vec<LintRecord> {
    SINK.with(|s| s.borrow_mut().take()).unwrap_or_default()
}

/// Records a lint if collection is armed on this thread; a no-op otherwise
/// (so runtime types behave normally outside a [`crate::Machine`] run).
pub fn report(record: LintRecord) {
    SINK.with(|s| {
        if let Some(v) = s.borrow_mut().as_mut() {
            v.push(record);
        }
    });
}

/// Exchanges the thread-local sink with a rank's saved slot — the
/// rank-locals swapper [`crate::Machine`] registers with the simulator's
/// worker-pool scheduler. In N:M mode several ranks share each worker
/// thread, so the sink travels with the rank's execution context instead of
/// the thread: the scheduler calls this immediately before a fiber resume
/// (loading the rank's sink) and immediately after (saving it back). The
/// `slot` is type-erased by the scheduler; it always holds an
/// `Option<Vec<LintRecord>>`, lazily initialized to the disarmed state.
pub(crate) fn swap_sink(slot: &mut Option<Box<dyn std::any::Any + Send>>) {
    let boxed = slot
        .get_or_insert_with(|| Box::new(None::<Vec<LintRecord>>) as Box<dyn std::any::Any + Send>);
    let saved = boxed
        .downcast_mut::<Option<Vec<LintRecord>>>()
        .expect("rank-locals slot holds a lint sink");
    SINK.with(|s| std::mem::swap(&mut *s.borrow_mut(), saved));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_reports_are_dropped() {
        report(LintRecord::BarrierGeneration {
            id: 0,
            generation: 1,
        });
        assert_eq!(take(), Vec::new());
    }

    #[test]
    fn armed_reports_come_back_in_order() {
        arm();
        report(LintRecord::BarrierGeneration {
            id: 2,
            generation: 5,
        });
        report(LintRecord::UnflushedCombiner {
            data_tag: Tag::app(1),
            buffered: 3,
        });
        let got = take();
        assert_eq!(got.len(), 2);
        assert!(matches!(
            got[0],
            LintRecord::BarrierGeneration { id: 2, .. }
        ));
        // Disarmed after take.
        report(LintRecord::BarrierGeneration {
            id: 0,
            generation: 0,
        });
        assert_eq!(take(), Vec::new());
    }

    #[test]
    fn display_is_informative() {
        let s = LintRecord::UnflushedCombiner {
            data_tag: Tag::app(7),
            buffered: 4,
        }
        .to_string();
        assert!(s.contains("tag 7") && s.contains('4'), "{s}");
    }
}
