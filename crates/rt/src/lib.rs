//! # numagap-rt — the message-passing runtime
//!
//! A Panda/Orca-like runtime layered on the simulated two-layer interconnect.
//! SPMD programs run one entry function per rank on a [`Machine`] and
//! communicate through typed tagged messages, blocking RPC, barriers,
//! sequencers, tree broadcasts/reductions (flat and cluster-aware) and
//! message-combining buffers — the exact primitives the HPCA'99 paper's six
//! applications were built from.
//!
//! ```
//! use numagap_rt::Machine;
//! use numagap_net::das_spec;
//! use numagap_sim::Tag;
//!
//! // A 2x2 machine with 10 ms / 1 MB/s wide-area links.
//! let machine = Machine::new(das_spec(2, 2, 10.0, 1.0));
//! let report = machine.run(|ctx| {
//!     if ctx.rank() == 0 {
//!         ctx.send(3, Tag::app(0), 42u32, 4); // crosses the WAN
//!     }
//!     if ctx.rank() == 3 {
//!         return ctx.recv_tag(Tag::app(0)).expect_clone::<u32>();
//!     }
//!     0
//! }).unwrap();
//! assert_eq!(report.results[3], 42);
//! assert!(report.elapsed.as_millis_f64() >= 10.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coll;
mod combine;
mod ctx;
pub mod lint;
mod machine;
pub mod reliable;
mod sync;
pub mod tags;

pub use coll::{
    bcast_aware, bcast_aware_shared, bcast_flat, bcast_flat_shared, bcast_group,
    bcast_group_payload, bcast_group_shared, reduce_aware, reduce_flat, reduce_group,
};
pub use combine::{Addressed, ClusterCombiner, Combiner};
pub use ctx::Ctx;
pub use lint::LintRecord;
pub use machine::{Machine, RunReport};
pub use reliable::{Ack, ReliableEnvelope, TransportConfig, TransportStats};
pub use sync::{get_seq, Barrier, SequencerServer};
