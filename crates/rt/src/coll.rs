//! Tree communication building blocks: binomial broadcast and reduce over
//! arbitrary rank groups, plus flat (topology-oblivious) and cluster-aware
//! (two-level) compositions.
//!
//! The *flat* variants are what a uniform-network runtime uses; the *aware*
//! variants cross each wide-area link at most once per operation — the core
//! idea behind both the paper's hand optimizations and MagPIe.

use std::any::Any;
use std::sync::Arc;

use numagap_sim::{Payload, Tag};

use crate::ctx::Ctx;

/// Payload-level binomial broadcast over `group` (a list of ranks), rooted at
/// position `root_pos`. Root passes `Some(payload)`, everyone else `None`.
/// Returns the payload at every member.
///
/// # Panics
///
/// Panics if the caller is not in `group`, or if the root does not supply a
/// payload.
pub fn bcast_group_payload(
    ctx: &mut Ctx<'_>,
    group: &[usize],
    root_pos: usize,
    tag: Tag,
    payload: Option<Payload>,
    wire_bytes: u64,
) -> Payload {
    let p = group.len();
    assert!(root_pos < p, "root position {root_pos} out of group");
    let me_pos = group
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("bcast caller must be a member of the group");
    let rel = (me_pos + p - root_pos) % p;
    let mut mask = 1usize;
    // Interior nodes forward with the wire size the message actually had,
    // not the (root-only) caller-declared size.
    let mut forward_bytes = wire_bytes;
    let payload = if rel == 0 {
        let payload = payload.expect("broadcast root must supply a payload");
        while mask < p {
            mask <<= 1;
        }
        payload
    } else {
        loop {
            if rel & mask != 0 {
                let parent_rel = rel ^ mask;
                let parent = group[(parent_rel + root_pos) % p];
                let msg = ctx.recv_from(parent, tag);
                forward_bytes = msg.wire_bytes;
                break msg.payload;
            }
            mask <<= 1;
        }
    };
    let mut m = mask >> 1;
    while m > 0 {
        if rel + m < p {
            let child = group[(rel + m + root_pos) % p];
            ctx.send_payload(child, tag, Arc::clone(&payload), forward_bytes);
        }
        m >>= 1;
    }
    payload
}

/// Typed binomial broadcast over a rank group. See [`bcast_group_payload`].
///
/// Deep-copies the payload out at every member; prefer
/// [`bcast_group_shared`] when a shared handle is enough.
pub fn bcast_group<T: Any + Send + Sync + Clone>(
    ctx: &mut Ctx<'_>,
    group: &[usize],
    root_pos: usize,
    tag: Tag,
    data: Option<T>,
    wire_bytes: u64,
) -> T {
    bcast_group_shared(ctx, group, root_pos, tag, data, wire_bytes)
        .as_ref()
        .clone()
}

/// Zero-copy variant of [`bcast_group`]: every member gets a shared handle
/// to the *same* payload allocation — the broadcast never deep-copies the
/// data, no matter how many ranks receive it.
pub fn bcast_group_shared<T: Any + Send + Sync>(
    ctx: &mut Ctx<'_>,
    group: &[usize],
    root_pos: usize,
    tag: Tag,
    data: Option<T>,
    wire_bytes: u64,
) -> Arc<T> {
    let payload = bcast_group_payload(
        ctx,
        group,
        root_pos,
        tag,
        data.map(|d| Arc::new(d) as Payload),
        wire_bytes,
    );
    payload
        .downcast::<T>()
        .unwrap_or_else(|_| panic!("broadcast payload type mismatch"))
}

/// Binomial reduce over a rank group with a commutative-associative `op`.
/// Returns `Some(total)` at the root position, `None` elsewhere.
///
/// # Panics
///
/// Panics if the caller is not in `group`.
pub fn reduce_group<T, F>(
    ctx: &mut Ctx<'_>,
    group: &[usize],
    root_pos: usize,
    tag: Tag,
    contrib: T,
    op: F,
    wire_bytes: u64,
) -> Option<T>
where
    T: Any + Send + Sync + Clone,
    F: Fn(&T, &T) -> T,
{
    let p = group.len();
    assert!(root_pos < p, "root position {root_pos} out of group");
    let me_pos = group
        .iter()
        .position(|&r| r == ctx.rank())
        .expect("reduce caller must be a member of the group");
    let rel = (me_pos + p - root_pos) % p;
    let mut acc = contrib;
    let mut mask = 1usize;
    while mask < p {
        if rel & mask == 0 {
            let src_rel = rel | mask;
            if src_rel < p {
                let src = group[(src_rel + root_pos) % p];
                let m = ctx.recv_from(src, tag);
                acc = op(&acc, m.expect_ref::<T>());
            }
        } else {
            let dst_rel = rel ^ mask;
            let dst = group[(dst_rel + root_pos) % p];
            ctx.send(dst, tag, acc, wire_bytes);
            return None;
        }
        mask <<= 1;
    }
    Some(acc)
}

/// Flat (topology-oblivious) broadcast over all ranks, rooted at rank `root`.
/// This is what a runtime written for a uniform interconnect does; on a
/// two-layer machine the binomial tree crosses wide-area links many times.
pub fn bcast_flat<T: Any + Send + Sync + Clone>(
    ctx: &mut Ctx<'_>,
    root: usize,
    tag: Tag,
    data: Option<T>,
    wire_bytes: u64,
) -> T {
    let group: Vec<usize> = (0..ctx.nprocs()).collect();
    bcast_group(ctx, &group, root, tag, data, wire_bytes)
}

/// Zero-copy variant of [`bcast_flat`]; see [`bcast_group_shared`].
pub fn bcast_flat_shared<T: Any + Send + Sync>(
    ctx: &mut Ctx<'_>,
    root: usize,
    tag: Tag,
    data: Option<T>,
    wire_bytes: u64,
) -> Arc<T> {
    let group: Vec<usize> = (0..ctx.nprocs()).collect();
    bcast_group_shared(ctx, &group, root, tag, data, wire_bytes)
}

/// Flat reduce over all ranks to rank `root`.
pub fn reduce_flat<T, F>(
    ctx: &mut Ctx<'_>,
    root: usize,
    tag: Tag,
    contrib: T,
    op: F,
    wire_bytes: u64,
) -> Option<T>
where
    T: Any + Send + Sync + Clone,
    F: Fn(&T, &T) -> T,
{
    let group: Vec<usize> = (0..ctx.nprocs()).collect();
    reduce_group(ctx, &group, root, tag, contrib, op, wire_bytes)
}

/// Cluster-aware broadcast: the root sends once to each remote cluster's
/// entry rank over the wide area, and each cluster fans out over its fast
/// local links — every WAN link carries the payload exactly once.
pub fn bcast_aware<T: Any + Send + Sync + Clone>(
    ctx: &mut Ctx<'_>,
    root: usize,
    tag: Tag,
    data: Option<T>,
    wire_bytes: u64,
) -> T {
    bcast_aware_shared(ctx, root, tag, data, wire_bytes)
        .as_ref()
        .clone()
}

/// Zero-copy variant of [`bcast_aware`]: one WAN crossing per remote
/// cluster *and* zero host-side payload copies — every rank on the machine
/// shares the root's single allocation.
pub fn bcast_aware_shared<T: Any + Send + Sync>(
    ctx: &mut Ctx<'_>,
    root: usize,
    tag: Tag,
    data: Option<T>,
    wire_bytes: u64,
) -> Arc<T> {
    let topo = ctx.topology().clone();
    let my_cluster = ctx.cluster();
    let root_cluster = topo.cluster_of_rank(root);
    let entry = if my_cluster == root_cluster {
        root
    } else {
        topo.cluster_root(my_cluster)
    };
    let me = ctx.rank();
    let mut forward_bytes = wire_bytes;
    let payload: Option<Payload> = if me == root {
        let payload: Payload = Arc::new(data.expect("broadcast root must supply data"));
        for c in 0..topo.nclusters() {
            if c != root_cluster {
                ctx.send_payload(topo.cluster_root(c), tag, Arc::clone(&payload), wire_bytes);
            }
        }
        Some(payload)
    } else if me == entry {
        let msg = ctx.recv_from(root, tag);
        forward_bytes = msg.wire_bytes;
        Some(msg.payload)
    } else {
        None
    };
    let members = topo.members(my_cluster).to_vec();
    let root_pos = members
        .iter()
        .position(|&r| r == entry)
        .expect("cluster entry must be a member");
    let payload = bcast_group_payload(ctx, &members, root_pos, tag, payload, forward_bytes);
    payload
        .downcast::<T>()
        .unwrap_or_else(|_| panic!("broadcast payload type mismatch"))
}

/// Cluster-aware reduce: each cluster reduces locally to its entry rank, and
/// the entries' partial results cross the wide area once each.
pub fn reduce_aware<T, F>(
    ctx: &mut Ctx<'_>,
    root: usize,
    tag: Tag,
    contrib: T,
    op: F,
    wire_bytes: u64,
) -> Option<T>
where
    T: Any + Send + Sync + Clone,
    F: Fn(&T, &T) -> T,
{
    let topo = ctx.topology().clone();
    let my_cluster = ctx.cluster();
    let root_cluster = topo.cluster_of_rank(root);
    let entry = if my_cluster == root_cluster {
        root
    } else {
        topo.cluster_root(my_cluster)
    };
    let members = topo.members(my_cluster).to_vec();
    let root_pos = members
        .iter()
        .position(|&r| r == entry)
        .expect("cluster entry must be a member");
    let partial = reduce_group(ctx, &members, root_pos, tag, contrib, &op, wire_bytes);
    let me = ctx.rank();
    if me == root {
        let mut acc = partial.expect("root holds its cluster's partial");
        for c in 0..topo.nclusters() {
            if c != root_cluster {
                let m = ctx.recv_from(topo.cluster_root(c), tag);
                acc = op(&acc, m.expect_ref::<T>());
            }
        }
        Some(acc)
    } else if me == entry {
        let partial = partial.expect("cluster entry holds the partial");
        ctx.send(root, tag, partial, wire_bytes);
        None
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::coll_tag;
    use crate::Machine;
    use numagap_net::{das_spec, uniform_spec};

    fn sum(a: &u64, b: &u64) -> u64 {
        a + b
    }

    #[test]
    fn flat_bcast_reaches_everyone() {
        for p in [1usize, 2, 3, 5, 8] {
            let machine = Machine::new(uniform_spec(p));
            let report = machine
                .run(|ctx| {
                    let data = if ctx.rank() == 0 { Some(7u64) } else { None };
                    bcast_flat(ctx, 0, coll_tag(0), data, 8)
                })
                .unwrap();
            assert_eq!(report.results, vec![7u64; p]);
        }
    }

    #[test]
    fn flat_bcast_nonzero_root() {
        let machine = Machine::new(uniform_spec(6));
        let report = machine
            .run(|ctx| {
                let data = if ctx.rank() == 4 { Some(11u64) } else { None };
                bcast_flat(ctx, 4, coll_tag(1), data, 8)
            })
            .unwrap();
        assert_eq!(report.results, vec![11u64; 6]);
    }

    #[test]
    fn flat_reduce_sums() {
        for p in [1usize, 2, 4, 7] {
            let machine = Machine::new(uniform_spec(p));
            let report = machine
                .run(|ctx| reduce_flat(ctx, 0, coll_tag(2), ctx.rank() as u64, sum, 8))
                .unwrap();
            let expected: u64 = (0..p as u64).sum();
            assert_eq!(report.results[0], Some(expected));
            for r in &report.results[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn aware_bcast_crosses_each_wan_link_once() {
        let machine = Machine::new(das_spec(4, 4, 1.0, 1.0));
        let report = machine
            .run(|ctx| {
                let data = if ctx.rank() == 0 {
                    Some(vec![1u8; 100])
                } else {
                    None
                };
                bcast_aware(ctx, 0, coll_tag(3), data, 100)
            })
            .unwrap();
        for r in &report.results {
            assert_eq!(r.len(), 100);
        }
        // Exactly 3 inter-cluster messages: one per remote cluster.
        assert_eq!(report.net_stats.inter_msgs, 3);
    }

    #[test]
    fn flat_bcast_crosses_wan_more_often() {
        // Note: on power-of-two machines with contiguous clusters a binomial
        // tree is accidentally near-hierarchical, so use 4 clusters of 3.
        let run = |aware: bool| {
            let machine = Machine::new(das_spec(4, 3, 1.0, 1.0));
            machine
                .run(move |ctx| {
                    let data = if ctx.rank() == 0 { Some(0u64) } else { None };
                    if aware {
                        bcast_aware(ctx, 0, coll_tag(4), data, 8)
                    } else {
                        bcast_flat(ctx, 0, coll_tag(4), data, 8)
                    }
                })
                .unwrap()
        };
        let flat = run(false);
        let aware = run(true);
        assert_eq!(
            aware.net_stats.inter_msgs, 3,
            "one WAN message per remote cluster"
        );
        assert!(
            flat.net_stats.inter_msgs > aware.net_stats.inter_msgs,
            "flat {} vs aware {}",
            flat.net_stats.inter_msgs,
            aware.net_stats.inter_msgs
        );
        // The flat tree also chains WAN hops (deeper critical path).
        assert!(flat.elapsed > aware.elapsed);
    }

    #[test]
    fn aware_reduce_matches_flat() {
        let expected: u64 = (0..12u64).map(|r| r * r).sum();
        for aware in [false, true] {
            let machine = Machine::new(das_spec(3, 4, 1.0, 1.0));
            let report = machine
                .run(move |ctx| {
                    let contrib = (ctx.rank() * ctx.rank()) as u64;
                    if aware {
                        reduce_aware(ctx, 0, coll_tag(5), contrib, sum, 8)
                    } else {
                        reduce_flat(ctx, 0, coll_tag(5), contrib, sum, 8)
                    }
                })
                .unwrap();
            assert_eq!(report.results[0], Some(expected));
        }
    }

    #[test]
    fn aware_reduce_sends_one_partial_per_cluster() {
        let machine = Machine::new(das_spec(4, 8, 1.0, 1.0));
        let report = machine
            .run(|ctx| reduce_aware(ctx, 0, coll_tag(6), 1u64, sum, 8))
            .unwrap();
        assert_eq!(report.results[0], Some(32));
        assert_eq!(report.net_stats.inter_msgs, 3);
    }

    #[test]
    fn group_bcast_on_subset() {
        let machine = Machine::new(uniform_spec(6));
        let report = machine
            .run(|ctx| {
                let group = [1usize, 3, 5];
                if group.contains(&ctx.rank()) {
                    let data = if ctx.rank() == 3 { Some(9u8) } else { None };
                    Some(bcast_group(ctx, &group, 1, coll_tag(7), data, 1))
                } else {
                    None
                }
            })
            .unwrap();
        assert_eq!(
            report.results,
            vec![None, Some(9), None, Some(9), None, Some(9)]
        );
    }

    #[test]
    fn reduce_with_nonzero_root() {
        let machine = Machine::new(das_spec(2, 3, 1.0, 1.0));
        let report = machine
            .run(|ctx| reduce_aware(ctx, 4, coll_tag(8), 2u64, sum, 8))
            .unwrap();
        assert_eq!(report.results[4], Some(12));
    }
}
