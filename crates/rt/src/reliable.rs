//! A reliable transport over the (possibly faulty) simulated network.
//!
//! With a [`numagap_net::FaultPlan`] installed, the WAN drops, duplicates
//! and reorders messages. This module restores exactly-once, in-order
//! per-sender delivery on top of it, the way the DAS gateways' TCP stacks
//! did for the real machine: every inter-cluster message is wrapped in a
//! sequence-numbered envelope, acknowledged by the receiver, retransmitted
//! on timeout with exponential backoff, deduplicated, and released to the
//! application only in sequence order. Intra-cluster (Myrinet) messages are
//! never faulted and bypass the envelope entirely.
//!
//! Acknowledgements travel on a dedicated internal tag block that the fault
//! plan exempts — modeling a small reliable out-of-band control plane. This
//! is a deliberate modeling decision: end-to-end reliable *termination*
//! over a fully lossy channel is the Two Generals problem, so some control
//! traffic must be dependable for every run to finish. Data traffic, which
//! carries the bandwidth and latency the paper studies, remains fully
//! exposed to the fault plan.
//!
//! Because the simulator has no timeout-receive primitive (a blocked `recv`
//! only wakes on a matching message), a transport-mode rank never blocks in
//! the kernel: it polls with `try_recv` and short compute ticks, growing the
//! tick geometrically while idle. The cost is purely virtual-time
//! granularity; determinism is unaffected. A consequence worth knowing: a
//! genuine protocol deadlock no longer trips the kernel's deadlock detector
//! (nobody is ever blocked), so transport runs should set a
//! [`crate::Machine::time_limit`].

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use numagap_net::{Topology, TwoLayerSpec};
use numagap_sim::{Filter, Message, Payload, ProcCtx, ProcId, SimDuration, SimTime, Tag};

use crate::lint::{self, LintRecord};
use crate::tags::ACK_TAG;

/// Tuning knobs of the reliable transport.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// How long to wait for an acknowledgement before retransmitting.
    pub retransmit_timeout: SimDuration,
    /// Maximum number of timeout doublings (exponential backoff cap).
    pub backoff_doublings: u32,
    /// During the exit flush, give up on an unacknowledged message after
    /// this many retransmissions (the peer has exited; see
    /// [`TransportStats::abandoned`]).
    pub max_flush_retries: u32,
    /// Smallest idle polling tick.
    pub poll_min: SimDuration,
    /// Largest idle polling tick (the idle tick doubles up to this).
    pub poll_max: SimDuration,
    /// Extra wire bytes charged per data message for the sequence-number
    /// envelope.
    pub header_bytes: u64,
    /// Wire bytes charged per acknowledgement.
    pub ack_bytes: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            retransmit_timeout: SimDuration::from_millis(40),
            backoff_doublings: 5,
            max_flush_retries: 8,
            poll_min: SimDuration::from_micros(20),
            poll_max: SimDuration::from_millis(2),
            header_bytes: 16,
            ack_bytes: 16,
        }
    }
}

impl TransportConfig {
    /// A config scaled to a machine spec: the retransmit timeout covers a
    /// few WAN round trips, and the polling ticks sit between the LAN and
    /// WAN latencies.
    pub fn for_spec(spec: &TwoLayerSpec) -> Self {
        let wan = spec.inter.latency;
        TransportConfig {
            retransmit_timeout: wan * 4 + SimDuration::from_millis(2),
            poll_min: spec.intra.latency.max(SimDuration::from_micros(10)),
            poll_max: wan.max(SimDuration::from_millis(1)),
            ..TransportConfig::default()
        }
    }
}

/// Per-rank counters of the reliable transport, reported in
/// [`crate::RunReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Distinct data messages sent under an envelope (first transmissions).
    pub data_sent: u64,
    /// Retransmissions (timeout-driven resends of enveloped messages).
    pub retransmits: u64,
    /// Acknowledgements sent.
    pub acks_sent: u64,
    /// Arriving copies suppressed as duplicates.
    pub duplicates_suppressed: u64,
    /// Unacknowledged messages given up on during the exit flush (the peer
    /// exited without consuming them).
    pub abandoned: u64,
    /// Messages released to the application through the transport (both
    /// enveloped WAN and raw LAN traffic).
    pub delivered: u64,
}

impl TransportStats {
    /// Sums another rank's counters into this one.
    pub fn merge(&mut self, other: &TransportStats) {
        self.data_sent += other.data_sent;
        self.retransmits += other.retransmits;
        self.acks_sent += other.acks_sent;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.abandoned += other.abandoned;
        self.delivered += other.delivered;
    }

    /// Fraction of data transmissions that were useful (first copies):
    /// `data_sent / (data_sent + retransmits)`. `1.0` when nothing was sent.
    pub fn goodput(&self) -> f64 {
        let total = self.data_sent + self.retransmits;
        if total == 0 {
            1.0
        } else {
            self.data_sent as f64 / total as f64
        }
    }
}

/// The sequence-numbered envelope every inter-cluster data message travels
/// in while the reliable transport is enabled. Public so analyses can
/// recognize transport traffic by downcasting payloads.
#[derive(Debug)]
pub struct ReliableEnvelope {
    /// Position in the sender-to-receiver stream (per ordered rank pair,
    /// counted from zero).
    pub conn_seq: u64,
    /// The application payload.
    pub inner: Payload,
}

/// Acknowledgement payload, carried on [`ACK_TAG`].
#[derive(Debug, Clone, Copy)]
pub struct Ack {
    /// The `conn_seq` being acknowledged (the stream is identified by the
    /// ack's sender and receiver ranks).
    pub conn_seq: u64,
}

struct UnackedMsg {
    dst: usize,
    tag: Tag,
    conn_seq: u64,
    envelope: Payload,
    wire_bytes: u64,
    deadline: SimTime,
    backoff: SimDuration,
    retries: u32,
}

/// Per-rank state of the reliable transport. Owned by [`crate::Ctx`]; all
/// methods take the raw simulator context explicitly because `Ctx` holds
/// both.
pub(crate) struct TransportState {
    cfg: TransportConfig,
    /// Next stream sequence number per destination rank.
    next_seq: Vec<u64>,
    /// Next in-order stream sequence number expected per source rank.
    expected: Vec<u64>,
    /// Out-of-order arrivals held back until the gap fills, keyed by
    /// `(src, conn_seq)`.
    stash: BTreeMap<(usize, u64), Message>,
    /// In-order messages ready for the application, arrival order.
    buffer: VecDeque<Message>,
    /// Sent but not yet acknowledged envelopes, send order.
    unacked: Vec<UnackedMsg>,
    stats: TransportStats,
}

impl TransportState {
    pub(crate) fn new(cfg: TransportConfig, nprocs: usize) -> Self {
        TransportState {
            cfg,
            next_seq: vec![0; nprocs],
            expected: vec![0; nprocs],
            stash: BTreeMap::new(),
            buffer: VecDeque::new(),
            unacked: Vec::new(),
            stats: TransportStats::default(),
        }
    }

    /// Sends through the transport: enveloped and tracked when the pair
    /// crosses clusters, raw otherwise (the Myrinet layer is reliable).
    pub(crate) fn send(
        &mut self,
        sim: &mut ProcCtx,
        topo: &Topology,
        dst: usize,
        tag: Tag,
        payload: Payload,
        wire_bytes: u64,
    ) {
        let inter = topo.cluster_of_rank(sim.rank()) != topo.cluster_of_rank(dst);
        if !inter {
            sim.send_payload(ProcId(dst), tag, payload, wire_bytes);
            return;
        }
        let conn_seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let envelope: Payload = Arc::new(ReliableEnvelope {
            conn_seq,
            inner: payload,
        });
        let framed = wire_bytes + self.cfg.header_bytes;
        sim.send_payload(ProcId(dst), tag, Arc::clone(&envelope), framed);
        self.unacked.push(UnackedMsg {
            dst,
            tag,
            conn_seq,
            envelope,
            wire_bytes: framed,
            deadline: sim.now() + self.cfg.retransmit_timeout,
            backoff: self.cfg.retransmit_timeout,
            retries: 0,
        });
        self.stats.data_sent += 1;
    }

    /// Drains the kernel mailbox: acks clear unacked entries; enveloped data
    /// is acknowledged, deduplicated, and released in stream order; raw
    /// (intra-cluster) messages pass straight through. Returns whether
    /// anything arrived.
    fn service(&mut self, sim: &mut ProcCtx) -> bool {
        let mut progressed = false;
        while let Some(msg) = sim.try_recv(Filter::any()) {
            progressed = true;
            if msg.tag == ACK_TAG {
                let ack = *msg.expect_ref::<Ack>();
                let peer = msg.src.0;
                self.unacked
                    .retain(|u| !(u.dst == peer && u.conn_seq == ack.conn_seq));
                continue;
            }
            let Some(env) = msg.downcast_ref::<ReliableEnvelope>() else {
                self.buffer.push_back(msg);
                continue;
            };
            let src = msg.src.0;
            let conn_seq = env.conn_seq;
            // Acknowledge every arriving copy, including duplicates and
            // out-of-order arrivals — the sender must stop retransmitting
            // even if we are still holding the message back.
            let inner = Arc::clone(&env.inner);
            sim.send(msg.src, ACK_TAG, Ack { conn_seq }, self.cfg.ack_bytes);
            self.stats.acks_sent += 1;
            let unwrapped = Message {
                wire_bytes: msg.wire_bytes.saturating_sub(self.cfg.header_bytes),
                payload: inner,
                ..msg
            };
            if conn_seq < self.expected[src] {
                self.stats.duplicates_suppressed += 1;
            } else if conn_seq == self.expected[src] {
                self.buffer.push_back(unwrapped);
                self.expected[src] += 1;
                // Release any stashed successors the gap was hiding.
                while let Some(m) = self.stash.remove(&(src, self.expected[src])) {
                    self.buffer.push_back(m);
                    self.expected[src] += 1;
                }
            } else if self.stash.insert((src, conn_seq), unwrapped).is_some() {
                self.stats.duplicates_suppressed += 1;
            }
        }
        progressed
    }

    /// Retransmits every unacked envelope whose deadline has passed,
    /// doubling its backoff. When `flushing`, entries that exhausted
    /// [`TransportConfig::max_flush_retries`] are abandoned instead (their
    /// peer has exited).
    fn retransmit_due(&mut self, sim: &mut ProcCtx, flushing: bool) {
        let now = sim.now();
        let cap = self.cfg.retransmit_timeout * (1u64 << self.cfg.backoff_doublings);
        let max_flush_retries = self.cfg.max_flush_retries;
        let mut abandoned = 0u64;
        let mut resend: Vec<(usize, Tag, Payload, u64)> = Vec::new();
        self.unacked.retain_mut(|u| {
            if u.deadline > now {
                return true;
            }
            if flushing && u.retries >= max_flush_retries {
                abandoned += 1;
                return false;
            }
            u.retries += 1;
            u.backoff = (u.backoff * 2).min(cap);
            u.deadline = now + u.backoff;
            resend.push((u.dst, u.tag, Arc::clone(&u.envelope), u.wire_bytes));
            true
        });
        for (dst, tag, envelope, wire_bytes) in resend {
            sim.send_payload(ProcId(dst), tag, envelope, wire_bytes);
            self.stats.retransmits += 1;
        }
        self.stats.abandoned += abandoned;
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.unacked.iter().map(|u| u.deadline).min()
    }

    fn take_match(&mut self, filter: &Filter) -> Option<Message> {
        let i = self.buffer.iter().position(|m| filter.matches(m))?;
        let msg = self.buffer.remove(i);
        if msg.is_some() {
            self.stats.delivered += 1;
        }
        msg
    }

    /// One idle step of the poll loop: retransmit what is due, then advance
    /// virtual time to the earlier of the grown idle tick and the next
    /// retransmit deadline.
    fn idle_step(&mut self, sim: &mut ProcCtx, idle: &mut SimDuration) {
        self.retransmit_due(sim, false);
        let mut step = *idle;
        if let Some(d) = self.next_deadline() {
            step = step.min(d.saturating_since(sim.now()).max(self.cfg.poll_min));
        }
        sim.compute(step);
        *idle = (*idle * 2).min(self.cfg.poll_max);
    }

    /// Blocking receive: polls until a buffered message matches `filter`.
    pub(crate) fn recv(&mut self, sim: &mut ProcCtx, filter: &Filter) -> Message {
        let mut idle = self.cfg.poll_min;
        loop {
            if self.service(sim) {
                idle = self.cfg.poll_min;
            }
            if let Some(msg) = self.take_match(filter) {
                return msg;
            }
            self.idle_step(sim, &mut idle);
        }
    }

    /// Non-blocking receive: drains arrivals once and scans the buffer.
    pub(crate) fn try_recv(&mut self, sim: &mut ProcCtx, filter: &Filter) -> Option<Message> {
        self.service(sim);
        self.retransmit_due(sim, false);
        self.take_match(filter)
    }

    /// Exit flush: keeps servicing acks and retransmitting until every sent
    /// message is acknowledged or abandoned, then reports undelivered
    /// leftovers as a lint and returns the final counters.
    pub(crate) fn finish(&mut self, sim: &mut ProcCtx) -> TransportStats {
        let mut idle = self.cfg.poll_min;
        while !self.unacked.is_empty() {
            if self.service(sim) {
                idle = self.cfg.poll_min;
            }
            if self.unacked.is_empty() {
                break;
            }
            self.retransmit_due(sim, true);
            if self.unacked.is_empty() {
                break;
            }
            let mut step = idle;
            if let Some(d) = self.next_deadline() {
                step = step.min(d.saturating_since(sim.now()).max(self.cfg.poll_min));
            }
            sim.compute(step);
            idle = (idle * 2).min(self.cfg.poll_max);
        }
        let undelivered = self.buffer.len() + self.stash.len();
        if undelivered > 0 {
            lint::report(LintRecord::TransportUndelivered {
                buffered: undelivered,
            });
        }
        self.stats
    }
}

impl std::fmt::Debug for TransportState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportState")
            .field("unacked", &self.unacked.len())
            .field("buffered", &self.buffer.len())
            .field("stashed", &self.stash.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_counts_first_copies() {
        let mut s = TransportStats::default();
        assert_eq!(s.goodput(), 1.0);
        s.data_sent = 80;
        s.retransmits = 20;
        assert!((s.goodput() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TransportStats {
            data_sent: 1,
            retransmits: 2,
            acks_sent: 3,
            duplicates_suppressed: 4,
            abandoned: 5,
            delivered: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.data_sent, 2);
        assert_eq!(a.delivered, 12);
    }

    #[test]
    fn config_scales_with_spec() {
        let spec = numagap_net::das_spec(2, 2, 10.0, 1.0);
        let cfg = TransportConfig::for_spec(&spec);
        assert!(cfg.retransmit_timeout >= spec.inter.latency * 4);
        assert!(cfg.poll_min <= cfg.poll_max);
    }
}
