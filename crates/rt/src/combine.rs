//! Message combining: batching many small messages into few large ones.
//!
//! One-level combining (per destination processor) is what the paper's
//! original Awari and Barnes-Hut codes already did; the *cluster-aware*
//! second level (per destination cluster, unpacked by a relay processor on
//! the far side) is the optimization that masks the high per-message cost of
//! the wide-area links.

use std::any::Any;
use std::collections::BTreeMap;

use numagap_sim::{Message, Tag};

use crate::ctx::Ctx;

/// One-level combining buffer: batches items per destination rank and sends
/// each batch as a single `Vec<T>` message under `data_tag`.
///
/// # Examples
///
/// ```
/// use numagap_rt::{Machine, Combiner};
/// use numagap_net::uniform_spec;
/// use numagap_sim::Tag;
///
/// let machine = Machine::new(uniform_spec(2));
/// machine.run(|ctx| {
///     if ctx.rank() == 0 {
///         let mut comb = Combiner::new(Tag::app(1), 8, 4);
///         for i in 0..10u64 {
///             comb.add(ctx, 1, i);
///         }
///         comb.flush(ctx);
///     } else {
///         let mut got = 0;
///         while got < 10 {
///             let batch: Vec<u64> = ctx.recv_tag(Tag::app(1)).expect_clone();
///             got += batch.len();
///         }
///     }
/// }).unwrap();
/// ```
#[derive(Debug)]
pub struct Combiner<T> {
    data_tag: Tag,
    item_bytes: u64,
    max_items: usize,
    buf: BTreeMap<usize, Vec<T>>,
}

impl<T: Any + Send + Sync> Combiner<T> {
    /// Creates a combiner sending batches under `data_tag`, charging
    /// `item_bytes` of wire per item, flushing a destination's buffer when it
    /// reaches `max_items`.
    ///
    /// # Panics
    ///
    /// Panics if `max_items` is zero.
    pub fn new(data_tag: Tag, item_bytes: u64, max_items: usize) -> Self {
        assert!(max_items > 0, "max_items must be positive");
        Combiner {
            data_tag,
            item_bytes,
            max_items,
            buf: BTreeMap::new(),
        }
    }

    /// Number of currently buffered items (all destinations).
    pub fn buffered(&self) -> usize {
        self.buf.values().map(Vec::len).sum()
    }

    /// Adds an item for `dst`, flushing that destination's batch if full.
    pub fn add(&mut self, ctx: &mut Ctx<'_>, dst: usize, item: T) {
        let v = self.buf.entry(dst).or_default();
        v.push(item);
        if v.len() >= self.max_items {
            let batch = std::mem::take(v);
            self.send_batch(ctx, dst, batch);
        }
    }

    /// Flushes all buffered batches (in ascending destination order).
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) {
        let buf = std::mem::take(&mut self.buf);
        for (dst, batch) in buf {
            if !batch.is_empty() {
                self.send_batch(ctx, dst, batch);
            }
        }
    }

    fn send_batch(&self, ctx: &mut Ctx<'_>, dst: usize, batch: Vec<T>) {
        let bytes = batch.len() as u64 * self.item_bytes;
        ctx.send(dst, self.data_tag, batch, bytes);
    }
}

impl<T> Drop for Combiner<T> {
    fn drop(&mut self) {
        let buffered: usize = self.buf.values().map(Vec::len).sum();
        if buffered > 0 && !std::thread::panicking() {
            crate::lint::report(crate::lint::LintRecord::UnflushedCombiner {
                data_tag: self.data_tag,
                buffered,
            });
        }
    }
}

/// An addressed item as shipped to a relay: `(final destination rank, item)`.
pub type Addressed<T> = (u32, T);

/// Two-level (cluster-aware) combining buffer.
///
/// Same-cluster items are batched per destination rank exactly like
/// [`Combiner`]. Items for a *remote* cluster are batched per cluster and
/// shipped once over the wide-area link to that cluster's relay rank, which
/// unpacks and forwards them locally (see [`ClusterCombiner::handle_relay`]).
/// Receivers see ordinary `Vec<T>` batches under `data_tag` either way.
#[derive(Debug)]
pub struct ClusterCombiner<T> {
    data_tag: Tag,
    relay_tag: Tag,
    item_bytes: u64,
    max_items: usize,
    remote_max_items: usize,
    local: BTreeMap<usize, Vec<T>>,
    remote: BTreeMap<usize, Vec<Addressed<T>>>,
}

impl<T: Any + Send + Sync + Clone> ClusterCombiner<T> {
    /// Creates a two-level combiner. `relay_tag` must be distinct from
    /// `data_tag`; relay ranks must pass messages received under `relay_tag`
    /// to [`ClusterCombiner::handle_relay`].
    ///
    /// # Panics
    ///
    /// Panics if the tags are equal or `max_items` is zero.
    pub fn new(data_tag: Tag, relay_tag: Tag, item_bytes: u64, max_items: usize) -> Self {
        assert_ne!(data_tag, relay_tag, "data and relay tags must differ");
        assert!(max_items > 0, "max_items must be positive");
        ClusterCombiner {
            data_tag,
            relay_tag,
            item_bytes,
            max_items,
            remote_max_items: max_items,
            local: BTreeMap::new(),
            remote: BTreeMap::new(),
        }
    }

    /// Sets a separate (typically much larger) flush threshold for the
    /// per-remote-cluster buffers: a cluster aggregates traffic for many
    /// destinations, so its batches should be proportionally bigger — that
    /// is the entire point of the second combining level.
    pub fn remote_threshold(mut self, items: usize) -> Self {
        assert!(items > 0, "remote threshold must be positive");
        self.remote_max_items = items;
        self
    }

    /// Number of currently buffered items (all destinations).
    pub fn buffered(&self) -> usize {
        self.local.values().map(Vec::len).sum::<usize>()
            + self.remote.values().map(Vec::len).sum::<usize>()
    }

    /// Adds an item for final destination `dst`.
    pub fn add(&mut self, ctx: &mut Ctx<'_>, dst: usize, item: T) {
        let my_cluster = ctx.cluster();
        let dst_cluster = ctx.topology().cluster_of_rank(dst);
        if dst_cluster == my_cluster {
            let v = self.local.entry(dst).or_default();
            v.push(item);
            if v.len() >= self.max_items {
                let batch = std::mem::take(v);
                self.send_local(ctx, dst, batch);
            }
        } else {
            let v = self.remote.entry(dst_cluster).or_default();
            v.push((dst as u32, item));
            if v.len() >= self.remote_max_items {
                let batch = std::mem::take(v);
                self.send_remote(ctx, dst_cluster, batch);
            }
        }
    }

    /// Flushes all buffered batches.
    pub fn flush(&mut self, ctx: &mut Ctx<'_>) {
        let local = std::mem::take(&mut self.local);
        for (dst, batch) in local {
            if !batch.is_empty() {
                self.send_local(ctx, dst, batch);
            }
        }
        let remote = std::mem::take(&mut self.remote);
        for (cluster, batch) in remote {
            if !batch.is_empty() {
                self.send_remote(ctx, cluster, batch);
            }
        }
    }

    fn send_local(&self, ctx: &mut Ctx<'_>, dst: usize, batch: Vec<T>) {
        let bytes = batch.len() as u64 * self.item_bytes;
        ctx.send(dst, self.data_tag, batch, bytes);
    }

    fn send_remote(&self, ctx: &mut Ctx<'_>, cluster: usize, batch: Vec<Addressed<T>>) {
        let relay = ctx.topology().cluster_root(cluster);
        // 4 bytes of addressing per item on the wire.
        let bytes = batch.len() as u64 * (self.item_bytes + 4);
        ctx.send(relay, self.relay_tag, batch, bytes);
    }

    /// Relay-side handler: unpacks a message received under `relay_tag` and
    /// forwards its items as per-destination `Vec<T>` batches under
    /// `data_tag` over the fast local links (including to the relay itself
    /// via loopback). Clones each item; prefer
    /// [`ClusterCombiner::handle_relay_owned`] when the message can be given
    /// up.
    pub fn handle_relay(&self, ctx: &mut Ctx<'_>, msg: &Message) {
        debug_assert_eq!(msg.tag, self.relay_tag, "not a relay message");
        let items = msg.expect_ref::<Vec<Addressed<T>>>();
        let mut per_dst: BTreeMap<usize, Vec<T>> = BTreeMap::new();
        for (dst, item) in items {
            per_dst.entry(*dst as usize).or_default().push(item.clone());
        }
        self.forward(ctx, per_dst);
    }

    /// Zero-copy variant of [`ClusterCombiner::handle_relay`]: consumes the
    /// relay message and, when it holds the last reference to the batch (the
    /// common case — a relay batch has exactly one addressee), *moves* the
    /// items into their per-destination batches instead of cloning them.
    pub fn handle_relay_owned(&self, ctx: &mut Ctx<'_>, msg: Message) {
        debug_assert_eq!(msg.tag, self.relay_tag, "not a relay message");
        let shared = msg.expect_shared::<Vec<Addressed<T>>>();
        let mut per_dst: BTreeMap<usize, Vec<T>> = BTreeMap::new();
        match std::sync::Arc::try_unwrap(shared) {
            Ok(items) => {
                for (dst, item) in items {
                    per_dst.entry(dst as usize).or_default().push(item);
                }
            }
            Err(shared) => {
                // Still referenced elsewhere (duplicated by fault injection
                // and not yet deduplicated): fall back to cloning.
                for (dst, item) in shared.iter() {
                    per_dst.entry(*dst as usize).or_default().push(item.clone());
                }
            }
        }
        self.forward(ctx, per_dst);
    }

    fn forward(&self, ctx: &mut Ctx<'_>, per_dst: BTreeMap<usize, Vec<T>>) {
        for (dst, batch) in per_dst {
            let bytes = batch.len() as u64 * self.item_bytes;
            ctx.send(dst, self.data_tag, batch, bytes);
        }
    }

    /// The tag relays must listen on.
    pub fn relay_tag(&self) -> Tag {
        self.relay_tag
    }

    /// The tag final batches are delivered under.
    pub fn data_tag(&self) -> Tag {
        self.data_tag
    }
}

impl<T> Drop for ClusterCombiner<T> {
    fn drop(&mut self) {
        let buffered: usize = self.local.values().map(Vec::len).sum::<usize>()
            + self.remote.values().map(Vec::len).sum::<usize>();
        if buffered > 0 && !std::thread::panicking() {
            crate::lint::report(crate::lint::LintRecord::UnflushedCombiner {
                data_tag: self.data_tag,
                buffered,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use numagap_net::{das_spec, uniform_spec};
    use numagap_sim::Filter;

    #[test]
    fn combiner_flushes_on_threshold() {
        let machine = Machine::new(uniform_spec(2));
        let report = machine
            .run(|ctx| {
                if ctx.rank() == 0 {
                    let mut comb = Combiner::new(Tag::app(1), 16, 3);
                    for i in 0..7u64 {
                        comb.add(ctx, 1, i);
                    }
                    assert_eq!(comb.buffered(), 1);
                    comb.flush(ctx);
                    assert_eq!(comb.buffered(), 0);
                    vec![]
                } else {
                    let mut batches = Vec::new();
                    let mut got = 0;
                    while got < 7 {
                        let b: Vec<u64> = ctx.recv_tag(Tag::app(1)).expect_clone();
                        got += b.len();
                        batches.push(b.len());
                    }
                    batches
                }
            })
            .unwrap();
        // Two full batches of 3 and a final flush of 1.
        assert_eq!(report.results[1], vec![3, 3, 1]);
    }

    #[test]
    fn combiner_reduces_message_count() {
        let count_msgs = |max_items: usize| {
            let machine = Machine::new(uniform_spec(2));
            machine
                .run(move |ctx| {
                    if ctx.rank() == 0 {
                        let mut comb = Combiner::new(Tag::app(1), 8, max_items);
                        for i in 0..100u64 {
                            comb.add(ctx, 1, i);
                        }
                        comb.flush(ctx);
                    } else {
                        let mut got = 0;
                        while got < 100 {
                            got += ctx.recv_tag(Tag::app(1)).expect_ref::<Vec<u64>>().len();
                        }
                    }
                })
                .unwrap()
                .kernel_stats
                .messages
        };
        assert_eq!(count_msgs(1), 100);
        assert_eq!(count_msgs(25), 4);
    }

    #[test]
    fn cluster_combiner_routes_via_relay() {
        // 2 clusters of 2; rank 1 sends items to everyone. Remote items must
        // travel as ONE wan message to the relay (rank 2), then fan out.
        let machine = Machine::new(das_spec(2, 2, 1.0, 1.0));
        let report = machine
            .run(|ctx| {
                let mut comb: ClusterCombiner<u64> =
                    ClusterCombiner::new(Tag::app(1), Tag::app(2), 8, 64);
                let mut received: Vec<u64> = Vec::new();
                if ctx.rank() == 1 {
                    for i in 0..12u64 {
                        // round-robin items to ranks 0,2,3
                        let dst = [0usize, 2, 3][(i % 3) as usize];
                        comb.add(ctx, dst, i);
                    }
                    comb.flush(ctx);
                }
                // Everyone except the sender expects 4 items; the relay also
                // serves one relay message.
                if ctx.rank() == 2 {
                    // Relay: first handle the relay batch, then collect own.
                    let m = ctx.recv_tag(Tag::app(2));
                    comb.handle_relay(ctx, &m);
                }
                if ctx.rank() != 1 {
                    while received.len() < 4 {
                        let m = ctx.recv(Filter::tag(Tag::app(1)));
                        received.extend(m.expect_ref::<Vec<u64>>());
                    }
                    received.sort_unstable();
                }
                received
            })
            .unwrap();
        assert_eq!(report.results[0], vec![0, 3, 6, 9]);
        assert_eq!(report.results[2], vec![1, 4, 7, 10]);
        assert_eq!(report.results[3], vec![2, 5, 8, 11]);
        // Exactly one WAN message: the combined relay batch.
        assert_eq!(report.net_stats.inter_msgs, 1);
    }

    #[test]
    fn relay_owned_moves_items_and_matches_cloning_path() {
        // Same routing as `cluster_combiner_routes_via_relay`, but the relay
        // consumes the message through the zero-copy owned path. Delivered
        // batches — and virtual time — must be identical to the cloning path.
        let run = |owned: bool| {
            let machine = Machine::new(das_spec(2, 2, 1.0, 1.0));
            machine
                .run(move |ctx| {
                    let mut comb: ClusterCombiner<u64> =
                        ClusterCombiner::new(Tag::app(1), Tag::app(2), 8, 64);
                    let mut received: Vec<u64> = Vec::new();
                    if ctx.rank() == 1 {
                        for i in 0..12u64 {
                            let dst = [0usize, 2, 3][(i % 3) as usize];
                            comb.add(ctx, dst, i);
                        }
                        comb.flush(ctx);
                    }
                    if ctx.rank() == 2 {
                        let m = ctx.recv_tag(Tag::app(2));
                        if owned {
                            comb.handle_relay_owned(ctx, m);
                        } else {
                            comb.handle_relay(ctx, &m);
                        }
                    }
                    if ctx.rank() != 1 {
                        while received.len() < 4 {
                            let m = ctx.recv(Filter::tag(Tag::app(1)));
                            received.extend(m.expect_ref::<Vec<u64>>());
                        }
                        received.sort_unstable();
                    }
                    received
                })
                .unwrap()
        };
        let cloned = run(false);
        let owned = run(true);
        assert_eq!(owned.results, cloned.results);
        assert_eq!(owned.elapsed, cloned.elapsed, "virtual time must agree");
        assert_eq!(owned.results[2], vec![1, 4, 7, 10]);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn cluster_combiner_rejects_equal_tags() {
        let _ = ClusterCombiner::<u8>::new(Tag::app(1), Tag::app(1), 1, 1);
    }
}
