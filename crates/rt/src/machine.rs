//! The simulated parallel machine: spawn-per-rank execution and reporting.

use std::sync::Arc;

use numagap_net::{NetStats, TwoLayerNetwork, TwoLayerSpec};
use numagap_sim::{
    HotProfile, KernelStats, Observer, ProcStats, SchedMode, Sim, SimDuration, SimError, SimTime,
    TieBreak, TraceLog,
};

use crate::ctx::Ctx;
use crate::lint::{self, LintRecord};
use crate::reliable::{TransportConfig, TransportStats};
use crate::tags;

/// A configured two-layer machine on which SPMD programs run.
///
/// # Examples
///
/// ```
/// use numagap_rt::Machine;
/// use numagap_net::das_spec;
///
/// let machine = Machine::new(das_spec(2, 2, 1.0, 1.0));
/// let report = machine.run(|ctx| ctx.rank() * 2).unwrap();
/// assert_eq!(report.results, vec![0, 2, 4, 6]);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    spec: TwoLayerSpec,
    time_limit: Option<SimDuration>,
    tracing: bool,
    transport: Option<TransportConfig>,
    tie_break: TieBreak,
    sched_mode: Option<SchedMode>,
    stack_size: Option<usize>,
}

impl Machine {
    /// Creates a machine from an interconnect spec.
    pub fn new(spec: TwoLayerSpec) -> Self {
        Machine {
            spec,
            time_limit: None,
            tracing: false,
            transport: None,
            tie_break: TieBreak::Fifo,
            sched_mode: None,
            stack_size: None,
        }
    }

    /// Selects how the simulator maps ranks onto OS threads (see
    /// [`SchedMode`]): the legacy 1 rank = 1 thread mode, or the N:M worker
    /// pool that thousand-rank scaling studies need. Virtual time is
    /// bit-identical across modes and worker counts. Defaults to the
    /// simulator's process-global mode (the CLI's `--sim-workers` flag).
    pub fn with_sched_mode(mut self, mode: SchedMode) -> Self {
        self.sched_mode = Some(mode);
        self
    }

    /// Sets the per-rank stack size in bytes (default 8 MiB). Large rank
    /// counts shrink this so a 4096-rank machine does not reserve tens of
    /// gigabytes of stacks.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = Some(bytes);
        self
    }

    /// Sets the kernel's tiebreak policy for equal-timestamp events
    /// (default [`TieBreak::Fifo`], the native deterministic order).
    ///
    /// The adversarial policies only permute events sharing a virtual
    /// timestamp, so any change in a run's makespan or results under them
    /// exposes dependence on scheduler tiebreak choice. This is the hook
    /// behind `numagap check --perturb`.
    pub fn with_tie_break(mut self, policy: TieBreak) -> Self {
        self.tie_break = policy;
        self
    }

    /// Runs every rank over the reliable transport (see `crate::reliable`),
    /// so applications complete with identical results under any WAN fault
    /// plan — degraded only in simulated time. The transport's ack tag
    /// block is automatically exempted from the spec's fault plan.
    ///
    /// Transport-mode ranks poll instead of blocking, so a protocol
    /// deadlock runs until the [`Machine::time_limit`] — set one.
    pub fn with_reliable_transport(mut self, cfg: TransportConfig) -> Self {
        self.transport = Some(cfg);
        self
    }

    /// Records an execution trace during runs; retrieve it from
    /// [`RunReport::trace`] and render with
    /// [`TraceLog::to_chrome_json`].
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Aborts runs whose virtual time exceeds `limit`.
    pub fn time_limit(mut self, limit: SimDuration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// The interconnect spec of this machine.
    pub fn spec(&self) -> &TwoLayerSpec {
        &self.spec
    }

    /// Runs `entry` as an SPMD program: one process per rank, all executing
    /// the same function.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures: deadlock, virtual time limit, or a
    /// panic inside a simulated process.
    pub fn run<T, F>(&self, entry: F) -> Result<RunReport<T>, SimError>
    where
        F: Fn(&mut Ctx<'_>) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        self.run_inner(entry, None)
    }

    /// Like [`Machine::run`], with a kernel [`Observer`] installed for the
    /// duration of the run — this is how the `numagap-analysis` sanitizer
    /// attaches to a machine.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures exactly like [`Machine::run`]. Observer
    /// state shared via `Arc` (as [`numagap_analysis::Analysis`] does)
    /// remains readable on the error path.
    ///
    /// [`numagap_analysis::Analysis`]: https://docs.rs/numagap-analysis
    pub fn run_observed<T, F>(
        &self,
        entry: F,
        observer: Box<dyn Observer>,
    ) -> Result<RunReport<T>, SimError>
    where
        F: Fn(&mut Ctx<'_>) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        self.run_inner(entry, Some(observer))
    }

    fn run_inner<T, F>(
        &self,
        entry: F,
        observer: Option<Box<dyn Observer>>,
    ) -> Result<RunReport<T>, SimError>
    where
        F: Fn(&mut Ctx<'_>) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        let mut spec = self.spec.clone();
        if self.transport.is_some() {
            if let Some(plan) = spec.fault_plan.as_mut() {
                // The ack control plane is modeled as reliable (see the
                // `crate::reliable` docs); without this every run would face
                // the Two Generals problem at exit.
                plan.exempt_tag_min.get_or_insert(tags::ACK_TAG.raw());
            }
        }
        let net = TwoLayerNetwork::new(spec.clone());
        let mut sim = Sim::new(net);
        sim.tie_break(self.tie_break);
        if let Some(mode) = self.sched_mode {
            sim.sched_mode(mode);
        }
        if let Some(bytes) = self.stack_size {
            sim.stack_size(bytes);
        }
        // Keep each rank's lint sink with its execution context: in N:M
        // mode ranks share worker threads, so the plain thread-local would
        // bleed records across ranks (see `lint::swap_sink`).
        sim.set_rank_locals_swapper(lint::swap_sink);
        if let Some(limit) = self.time_limit {
            sim.time_limit(SimTime::ZERO + limit);
        }
        if self.tracing {
            sim.enable_tracing();
        }
        if let Some(observer) = observer {
            sim.set_observer(observer);
        }
        let topo = Arc::new(self.spec.topology.clone());
        let entry = Arc::new(entry);
        for _rank in 0..self.spec.topology.nprocs() {
            let entry = Arc::clone(&entry);
            let topo = Arc::clone(&topo);
            let transport = self.transport.clone();
            sim.spawn(move |pctx| {
                let mut ctx = Ctx::new(pctx, topo);
                if let Some(cfg) = transport {
                    ctx.enable_reliable_transport(cfg);
                }
                // Arm the per-thread lint sink so runtime primitives the
                // entry creates (combiners, barriers) can report on drop.
                lint::arm();
                let result = entry(&mut ctx);
                // Flush before taking lints: the flush itself can report.
                let transport_stats = ctx.finish_transport();
                (result, lint::take(), transport_stats)
            });
        }
        let out = sim.run()?;
        let net_stats = out.network.stats();
        let mut results = Vec::with_capacity(out.results.len());
        let mut rank_lints = Vec::with_capacity(out.results.len());
        let mut transport_stats = Vec::with_capacity(out.results.len());
        for r in out.results {
            // A rank-level panic no longer aborts the kernel; surface the
            // first one here as the machine-level error `Machine::run`
            // documents.
            let r = r.map_err(|f| SimError::ProcessPanicked {
                rank: f.rank,
                message: f.message,
            })?;
            let (result, lints, tstats) = *r
                .downcast::<(T, Vec<LintRecord>, Option<TransportStats>)>()
                .expect("machine entry result type mismatch");
            results.push(result);
            rank_lints.push(lints);
            if let Some(tstats) = tstats {
                transport_stats.push(tstats);
            }
        }
        Ok(RunReport {
            elapsed: out.elapsed,
            results,
            proc_stats: out.proc_stats,
            kernel_stats: out.kernel_stats,
            profile: out.profile,
            net_stats,
            trace: out.trace,
            rank_lints,
            transport_stats,
            spec,
            sim_threads: out.sim_threads,
        })
    }
}

/// Everything measured during one machine run.
#[derive(Debug, Clone)]
pub struct RunReport<T> {
    /// Virtual makespan.
    pub elapsed: SimDuration,
    /// Per-rank results of the entry function.
    pub results: Vec<T>,
    /// Per-rank kernel accounting.
    pub proc_stats: Vec<ProcStats>,
    /// Whole-run kernel accounting.
    pub kernel_stats: KernelStats,
    /// Kernel hot-path self-profile (see [`HotProfile`]).
    pub profile: HotProfile,
    /// Traffic statistics from the network model.
    pub net_stats: NetStats,
    /// The execution trace, when the machine was built
    /// [`Machine::with_tracing`].
    pub trace: Option<TraceLog>,
    /// Runtime lint records collected on each rank (see [`crate::lint`]).
    pub rank_lints: Vec<Vec<LintRecord>>,
    /// Per-rank reliable-transport counters; empty unless the machine was
    /// built [`Machine::with_reliable_transport`].
    pub transport_stats: Vec<TransportStats>,
    /// The spec the machine ran with.
    pub spec: TwoLayerSpec,
    /// Peak number of OS threads the simulator used to execute ranks (the
    /// worker-pool size in N:M mode, the rank count in legacy mode).
    pub sim_threads: usize,
}

impl<T> RunReport<T> {
    /// The seed of the spec's fault plan, if any — echoed so any faulty run
    /// is reproducible from its report alone.
    pub fn effective_seed(&self) -> Option<u64> {
        self.spec.fault_plan.as_ref().map(|p| p.seed)
    }

    /// Machine-wide reliable-transport counters; `None` unless the machine
    /// ran with the transport enabled.
    pub fn transport_totals(&self) -> Option<TransportStats> {
        if self.transport_stats.is_empty() {
            return None;
        }
        let mut total = TransportStats::default();
        for s in &self.transport_stats {
            total.merge(s);
        }
        Some(total)
    }

    /// Aggregate inter-cluster payload volume in MByte/s averaged over the
    /// run, per cluster (the y-axis of the paper's Figure 1).
    pub fn inter_mbytes_per_sec_per_cluster(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        let clusters = self.spec.topology.nclusters() as f64;
        if secs == 0.0 || clusters == 0.0 {
            return 0.0;
        }
        (self.net_stats.inter_payload_bytes as f64 / 1e6) / secs / clusters
    }

    /// Outgoing inter-cluster messages per second per cluster (the x-axis of
    /// the paper's Figure 1).
    pub fn inter_msgs_per_sec_per_cluster(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        let clusters = self.spec.topology.nclusters() as f64;
        if secs == 0.0 || clusters == 0.0 {
            return 0.0;
        }
        self.net_stats.inter_msgs as f64 / secs / clusters
    }

    /// Total traffic (all layers) in MByte/s across the whole machine — the
    /// "Total Traffic" column of the paper's Table 1.
    pub fn total_mbytes_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.net_stats.total_payload_bytes() as f64 / 1e6 / secs
    }

    /// Per-rank CPU utilization: fraction of the makespan spent computing
    /// (software send/receive overheads count as CPU work).
    pub fn utilization(&self) -> Vec<f64> {
        let total = self.elapsed.as_secs_f64();
        if total == 0.0 {
            return vec![0.0; self.proc_stats.len()];
        }
        self.proc_stats
            .iter()
            .map(|s| (s.compute + s.send_overhead + s.recv_overhead).as_secs_f64() / total)
            .collect()
    }

    /// Busy fraction of each wide-area link over the makespan:
    /// `(src_cluster, dst_cluster, utilization)`.
    pub fn wan_utilization(&self) -> Vec<(usize, usize, f64)> {
        let total = self.elapsed.as_secs_f64();
        self.net_stats
            .wan_busy
            .iter()
            .map(|(a, b, busy)| {
                let u = if total == 0.0 {
                    0.0
                } else {
                    busy.as_secs_f64() / total
                };
                (*a, *b, u)
            })
            .collect()
    }
}

// The benchmark engine (`numagap-bench`) shares one `Machine` across its
// worker threads by reference; this fails to compile if a future field ever
// costs `Machine` (or its reports) thread-safety.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Machine>();
    assert_send_sync::<RunReport<u64>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use numagap_net::{das_spec, uniform_spec};
    use numagap_sim::Tag;

    #[test]
    fn spmd_results_in_rank_order() {
        let machine = Machine::new(uniform_spec(5));
        let report = machine.run(|ctx| ctx.rank() as u64).unwrap();
        assert_eq!(report.results, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn traffic_rates_are_reported() {
        let machine = Machine::new(das_spec(2, 2, 1.0, 1.0));
        let report = machine
            .run(|ctx| {
                if ctx.rank() == 0 {
                    // one intra (to 1) and one inter (to 2) message
                    ctx.send(1, Tag::app(0), (), 1000);
                    ctx.send(2, Tag::app(0), (), 1000);
                }
                if ctx.rank() == 1 || ctx.rank() == 2 {
                    ctx.recv_tag(Tag::app(0));
                }
            })
            .unwrap();
        assert_eq!(report.net_stats.intra_msgs, 1);
        assert_eq!(report.net_stats.inter_msgs, 1);
        assert!(report.inter_mbytes_per_sec_per_cluster() > 0.0);
        assert!(report.inter_msgs_per_sec_per_cluster() > 0.0);
        assert!(report.total_mbytes_per_sec() > 0.0);
    }

    #[test]
    fn utilization_reports() {
        let machine = Machine::new(das_spec(2, 1, 1.0, 1.0));
        let report = machine
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.compute(SimDuration::from_millis(10));
                    ctx.send(1, Tag::app(0), (), 100);
                }
                if ctx.rank() == 1 {
                    ctx.recv_tag(Tag::app(0));
                }
            })
            .unwrap();
        let util = report.utilization();
        assert_eq!(util.len(), 2);
        assert!(util[0] > 0.5, "rank 0 mostly computes: {util:?}");
        assert!(util[1] < 0.5, "rank 1 mostly waits: {util:?}");
        let wan = report.wan_utilization();
        assert_eq!(wan.len(), 1, "one WAN link carried traffic");
        assert!(wan[0].2 > 0.0 && wan[0].2 <= 1.0);
    }

    #[test]
    fn tracing_records_activity() {
        let machine = Machine::new(das_spec(2, 2, 1.0, 1.0)).with_tracing();
        let report = machine
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.compute(SimDuration::from_millis(2));
                    ctx.send(3, Tag::app(0), 7u8, 1);
                }
                if ctx.rank() == 3 {
                    ctx.recv_tag(Tag::app(0));
                }
            })
            .unwrap();
        let trace = report.trace.expect("trace enabled");
        assert_eq!(trace.message_count(), 1);
        assert_eq!(
            trace.compute_time_of(0),
            SimDuration::from_millis(2),
            "trace must reconcile with accounting"
        );
        let json = trace.to_chrome_json();
        assert!(json.contains("\"ph\":\"s\""));
        // Untracked runs carry no trace.
        let untraced = Machine::new(das_spec(2, 2, 1.0, 1.0)).run(|_| ()).unwrap();
        assert!(untraced.trace.is_none());
    }

    #[test]
    fn time_limit_propagates() {
        let machine = Machine::new(uniform_spec(1)).time_limit(SimDuration::from_millis(1));
        let err = machine
            .run(|ctx| loop {
                ctx.compute(SimDuration::from_secs(1));
            })
            .unwrap_err();
        assert!(matches!(err, SimError::TimeLimit { .. }));
    }

    #[test]
    fn determinism_bit_for_bit() {
        let run = || {
            let machine = Machine::new(das_spec(2, 4, 5.0, 0.5));
            machine
                .run(|ctx| {
                    let n = ctx.nprocs();
                    let me = ctx.rank();
                    // Everyone sends to everyone; a little compute in between.
                    for d in 0..n {
                        if d != me {
                            ctx.send(d, Tag::app(1), me as u64, 128);
                        }
                    }
                    let mut acc = 0u64;
                    for _ in 0..n - 1 {
                        let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(1));
                        acc += v;
                        ctx.compute(SimDuration::from_micros(50));
                    }
                    acc
                })
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.results, b.results);
        assert_eq!(a.net_stats.inter_msgs, b.net_stats.inter_msgs);
    }

    #[test]
    fn adversarial_tie_breaks_leave_outcome_bit_identical() {
        // All ranks share Wake events at t=0 (permuted by the adversarial
        // policies), then stagger their sends so no two transfers contend
        // for a shared network resource at the same instant — the paper
        // apps' shape. A structurally deterministic program must produce a
        // bit-identical report under every policy.
        let run = |tb: TieBreak| {
            let machine = Machine::new(das_spec(2, 4, 5.0, 0.5)).with_tie_break(tb);
            machine
                .run(|ctx| {
                    let n = ctx.nprocs();
                    let me = ctx.rank();
                    ctx.compute(SimDuration::from_micros(1 + me as u64));
                    for d in 0..n {
                        if d != me {
                            ctx.send(d, Tag::app(1), me as u64, 64);
                        }
                    }
                    let mut acc = 0u64;
                    for _ in 0..n - 1 {
                        let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(1));
                        acc = acc.wrapping_add(v.wrapping_mul(v ^ 0x9E37));
                        ctx.compute(SimDuration::from_micros(10));
                    }
                    acc
                })
                .unwrap()
        };
        let fifo = run(TieBreak::Fifo);
        for tb in [
            TieBreak::Reversed,
            TieBreak::Shuffled(1),
            TieBreak::Shuffled(0xFEED),
        ] {
            let p = run(tb);
            assert_eq!(fifo.elapsed, p.elapsed, "{tb}: makespan moved");
            assert_eq!(fifo.results, p.results, "{tb}: results moved");
            assert_eq!(
                fifo.kernel_stats, p.kernel_stats,
                "{tb}: kernel accounting moved"
            );
        }
    }

    #[test]
    fn same_instant_link_contention_is_arbitrated_canonically() {
        // The hard case: two ranks sending over the same WAN gateway at the
        // exact same virtual instant. The kernel defers link booking to the
        // timestamp boundary and replays it in canonical (departure, rank,
        // send index) order, so even here — where event order is the ONLY
        // thing an eager booking could arbitrate by — the makespan must not
        // move under adversarial tiebreak policies. One receiver computes
        // after its receive, so whichever message queued second WOULD be
        // visible in the final time if arbitration leaked event order.
        let run = |tb: TieBreak| {
            let machine = Machine::new(das_spec(2, 4, 5.0, 0.5)).with_tie_break(tb);
            machine
                .run(|ctx| {
                    let me = ctx.rank();
                    if me < 2 {
                        // Same-instant inter-cluster sends from two ranks.
                        ctx.send(me + 4, Tag::app(1), me as u64, 4096);
                    } else if me == 4 {
                        // Post-receive compute dominates the makespan, so
                        // whichever queueing order delayed THIS message is
                        // visible in the final time.
                        let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(1));
                        ctx.compute(SimDuration::from_millis(5));
                        return v;
                    } else if me == 5 {
                        let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(1));
                        return v;
                    }
                    0
                })
                .unwrap()
        };
        let fifo = run(TieBreak::Fifo);
        for tb in [TieBreak::Reversed, TieBreak::Shuffled(0xFEED)] {
            let p = run(tb);
            assert_eq!(fifo.results, p.results, "{tb}: tagged payloads moved");
            assert_eq!(
                fifo.elapsed, p.elapsed,
                "{tb}: same-instant contention leaked event order into the makespan"
            );
        }
    }
}
