//! The per-process runtime context: topology-aware typed messaging.

use std::any::Any;
use std::sync::Arc;

use numagap_net::Topology;
use numagap_sim::{Filter, Message, Payload, ProcCtx, ProcId, SimDuration, SimTime, Tag};

use crate::reliable::{TransportConfig, TransportState, TransportStats};
use crate::tags::rpc_reply_tag;

/// Runtime view of one simulated processor.
///
/// Wraps the raw simulator context with the machine's [`Topology`] and typed
/// convenience operations. Application code receives a `&mut Ctx<'_>` as its
/// entry argument from [`crate::Machine::run`].
pub struct Ctx<'a> {
    sim: &'a mut ProcCtx,
    topo: Arc<Topology>,
    transport: Option<TransportState>,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("rank", &self.rank())
            .field("cluster", &self.cluster())
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

impl<'a> Ctx<'a> {
    /// Wraps a raw simulator context. Used by [`crate::Machine`]; application
    /// code never calls this.
    pub fn new(sim: &'a mut ProcCtx, topo: Arc<Topology>) -> Self {
        Ctx {
            sim,
            topo,
            transport: None,
        }
    }

    /// Opts this rank into the reliable transport: all subsequent sends and
    /// receives gain sequence numbers, ack/retransmit, duplicate
    /// suppression, and in-order release, surviving any WAN fault plan.
    /// [`crate::Machine::with_reliable_transport`] calls this on every rank.
    pub fn enable_reliable_transport(&mut self, cfg: TransportConfig) {
        let nprocs = self.sim.nprocs();
        self.transport = Some(TransportState::new(cfg, nprocs));
    }

    /// Whether this rank runs over the reliable transport.
    pub fn reliable_transport_enabled(&self) -> bool {
        self.transport.is_some()
    }

    /// Flushes the reliable transport (retransmitting until every sent
    /// message is acknowledged or its peer is known to have exited) and
    /// returns its counters. Called by [`crate::Machine`] when the rank's
    /// entry function returns; `None` when the transport is disabled.
    pub fn finish_transport(&mut self) -> Option<TransportStats> {
        self.transport.as_mut().map(|t| t.finish(self.sim))
    }

    /// This process's rank in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.sim.rank()
    }

    /// Total number of processes.
    pub fn nprocs(&self) -> usize {
        self.sim.nprocs()
    }

    /// The machine's cluster layout.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Cluster index of this process.
    pub fn cluster(&self) -> usize {
        self.topo.cluster_of_rank(self.rank())
    }

    /// Number of clusters in the machine.
    pub fn nclusters(&self) -> usize {
        self.topo.nclusters()
    }

    /// Ranks in this process's cluster.
    pub fn cluster_members(&self) -> &[usize] {
        self.topo.members(self.cluster())
    }

    /// The designated coordinator rank of this process's cluster.
    pub fn cluster_root(&self) -> usize {
        self.topo.cluster_root(self.cluster())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Spends virtual CPU time. `d` is the *nominal* cost; on
    /// heterogeneous machines it is scaled by this rank's cluster compute
    /// speed ([`Topology::scale_compute`]), so a rank in a half-speed
    /// cluster burns twice the virtual time for the same work.
    pub fn compute(&mut self, d: SimDuration) {
        let d = self.topo.scale_compute(self.sim.rank(), d);
        self.sim.compute(d);
    }

    /// Spends virtual CPU time given in nanoseconds (convenient for cost
    /// models that compute `f64` nanosecond totals). Scaled by the rank's
    /// cluster compute speed like [`Ctx::compute`].
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn compute_ns(&mut self, ns: f64) {
        assert!(ns.is_finite() && ns >= 0.0, "invalid compute time {ns}ns");
        self.compute(SimDuration::from_nanos(ns.round() as u64));
    }

    /// Sends `value` to `dst` under `tag`, charging `wire_bytes`.
    pub fn send<T: Any + Send + Sync>(&mut self, dst: usize, tag: Tag, value: T, wire_bytes: u64) {
        self.send_payload(dst, tag, Arc::new(value), wire_bytes);
    }

    /// Sends a shared payload (no deep copy; cheap for multicast fan-out).
    pub fn send_payload(&mut self, dst: usize, tag: Tag, payload: Payload, wire_bytes: u64) {
        match self.transport.as_mut() {
            Some(t) => t.send(self.sim, &self.topo, dst, tag, payload, wire_bytes),
            None => self.sim.send_payload(ProcId(dst), tag, payload, wire_bytes),
        }
    }

    /// Blocks until a message matching `filter` arrives.
    pub fn recv(&mut self, filter: Filter) -> Message {
        match self.transport.as_mut() {
            Some(t) => t.recv(self.sim, &filter),
            None => self.sim.recv(filter),
        }
    }

    /// Blocks until any message with `tag` arrives.
    pub fn recv_tag(&mut self, tag: Tag) -> Message {
        self.recv(Filter::tag(tag))
    }

    /// Blocks until a message with `tag` from `src` arrives.
    pub fn recv_from(&mut self, src: usize, tag: Tag) -> Message {
        self.recv(Filter::tag(tag).from(ProcId(src)))
    }

    /// Non-blocking poll for a matching message.
    pub fn try_recv(&mut self, filter: Filter) -> Option<Message> {
        match self.transport.as_mut() {
            Some(t) => t.try_recv(self.sim, &filter),
            None => self.sim.try_recv(filter),
        }
    }

    /// Receives a message with `tag` and clones out a typed payload.
    ///
    /// # Panics
    ///
    /// Panics if the payload type does not match (a protocol bug).
    pub fn recv_typed<T: Any + Send + Sync + Clone>(&mut self, tag: Tag) -> (usize, T) {
        let m = self.recv_tag(tag);
        let v = m.expect_clone::<T>();
        (m.src.0, v)
    }

    /// Blocking remote procedure call: sends `req` to `dst` under
    /// `service_tag` and waits for the reply.
    ///
    /// The server must answer with [`Ctx::reply`]. Each rank has one
    /// outstanding RPC at a time (this call blocks), so reply routing is by
    /// caller rank.
    pub fn rpc<Req, Resp>(&mut self, dst: usize, service_tag: Tag, req: Req, req_bytes: u64) -> Resp
    where
        Req: Any + Send + Sync,
        Resp: Any + Send + Sync + Clone,
    {
        self.send(dst, service_tag, req, req_bytes);
        let reply = self.recv(Filter::tag(rpc_reply_tag(self.rank())).from(ProcId(dst)));
        reply.expect_clone::<Resp>()
    }

    /// Replies to an RPC request message received under a service tag.
    pub fn reply<Resp: Any + Send + Sync>(&mut self, request: &Message, resp: Resp, bytes: u64) {
        self.send(request.src.0, rpc_reply_tag(request.src.0), resp, bytes);
    }
}

#[cfg(test)]
mod tests {
    use crate::Machine;
    use numagap_net::{uniform_spec, Topology, TwoLayerSpec};
    use numagap_sim::{Filter, Tag};

    #[test]
    fn topology_accessors() {
        let machine = Machine::new(TwoLayerSpec::new(Topology::symmetric(2, 2)));
        let report = machine
            .run(|ctx| (ctx.rank(), ctx.cluster(), ctx.cluster_root()))
            .unwrap();
        assert_eq!(
            report.results,
            vec![(0, 0, 0), (1, 0, 0), (2, 1, 2), (3, 1, 2)]
        );
    }

    #[test]
    fn heterogeneous_clusters_scale_compute_time() {
        use numagap_sim::SimDuration;
        // Cluster 0 at 0.4x speed, cluster 1 nominal: the same nominal
        // compute costs 2.5x more virtual time on cluster 0.
        let topo = Topology::symmetric(2, 2).with_cluster_speeds(&[400, 1000]);
        let machine = Machine::new(TwoLayerSpec::new(topo));
        let report = machine
            .run(|ctx| {
                ctx.compute(SimDuration::from_micros(100));
                ctx.compute_ns(100_000.0);
                ctx.now().as_nanos()
            })
            .unwrap();
        assert_eq!(report.results[0], 500_000, "slow cluster: 2 x 250us");
        assert_eq!(report.results[2], 200_000, "nominal cluster: 2 x 100us");
    }

    #[test]
    fn rpc_round_trip() {
        let machine = Machine::new(uniform_spec(2));
        let tag = crate::tags::service_tag(0);
        let report = machine
            .run(move |ctx| {
                if ctx.rank() == 0 {
                    // Server: answer one doubled value.
                    let req = ctx.recv_tag(tag);
                    let v = *req.expect_ref::<u64>();
                    ctx.reply(&req, v * 2, 8);
                    0
                } else {
                    ctx.rpc::<u64, u64>(0, tag, 21, 8)
                }
            })
            .unwrap();
        assert_eq!(report.results[1], 42);
    }

    #[test]
    fn typed_recv() {
        let machine = Machine::new(uniform_spec(2));
        let report = machine
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, Tag::app(3), vec![1.0f64, 2.0], 16);
                    Vec::new()
                } else {
                    let (src, v): (usize, Vec<f64>) = ctx.recv_typed(Tag::app(3));
                    assert_eq!(src, 0);
                    v
                }
            })
            .unwrap();
        assert_eq!(report.results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn try_recv_is_polling() {
        let machine = Machine::new(uniform_spec(2));
        machine
            .run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, Tag::app(0), (), 1);
                } else {
                    while ctx.try_recv(Filter::any()).is_none() {
                        ctx.compute(numagap_sim::SimDuration::from_micros(10));
                    }
                }
            })
            .unwrap();
    }
}
