//! End-to-end dedup semantics of the reliable transport over a
//! duplicate-heavy WAN.
//!
//! The kernel mailbox's tag index (see `numagap_sim::mailbox`) is proven
//! equivalent to a linear scan by unit tests inside the kernel; this suite
//! closes the loop one layer up: when arrivals flow through the reliable
//! transport — which acknowledges, deduplicates, and releases messages in
//! stream order before the application's tag filters ever see them — a
//! tag-filtered receive must still deliver every payload exactly once and
//! in per-tag send order, no matter how aggressively the WAN drops,
//! duplicates, and reorders.

use numagap_net::{das_spec, FaultPlan};
use numagap_rt::{Machine, TransportConfig};
use numagap_sim::{SimDuration, Tag};

const MSGS_PER_TAG: u64 = 40;
const TAG_A: Tag = Tag::app(1);
const TAG_B: Tag = Tag::app(2);

/// 2 clusters x 2 ranks; rank 0 and rank 2 sit in different clusters, so
/// all test traffic crosses the faulty WAN.
fn machine(plan: FaultPlan) -> Machine {
    let spec = das_spec(2, 2, 1.0, 8.0).fault_plan(plan);
    // A timeout far above the worst queueing delay of this traffic burst
    // (the gateway CPUs serialize every message at 60 us each): every
    // retransmission and suppressed duplicate in these tests is then
    // attributable to an *injected* fault, never to congestion.
    let cfg = TransportConfig {
        retransmit_timeout: SimDuration::from_millis(100),
        ..TransportConfig::for_spec(&spec)
    };
    Machine::new(spec)
        .with_reliable_transport(cfg)
        .time_limit(SimDuration::from_secs(600))
}

/// Per-rank entry: rank 0 interleaves numbered sends on two tags; rank 2
/// receives tag B *first* and tag A second (the reverse of the interleaved
/// send order), forcing every tag-A message to wait in the transport's
/// delivery buffer while tag-B filters skip past it.
fn entry(ctx: &mut numagap_rt::Ctx<'_>) -> Vec<u64> {
    match ctx.rank() {
        0 => {
            for i in 0..MSGS_PER_TAG {
                ctx.send(2, TAG_A, i, 16);
                ctx.send(2, TAG_B, 1000 + i, 16);
            }
            // Wait for the receiver's summary so the sender cannot exit
            // (and start its flush) before delivery is complete.
            let (_, done) = ctx.recv_typed::<u64>(Tag::app(9));
            vec![done]
        }
        2 => {
            let mut got = Vec::with_capacity(2 * MSGS_PER_TAG as usize);
            for _ in 0..MSGS_PER_TAG {
                let (_, v) = ctx.recv_typed::<u64>(TAG_B);
                got.push(v);
            }
            for _ in 0..MSGS_PER_TAG {
                let (_, v) = ctx.recv_typed::<u64>(TAG_A);
                got.push(v);
            }
            ctx.send(0, Tag::app(9), got.len() as u64, 8);
            got
        }
        _ => Vec::new(),
    }
}

fn check_delivery(got: &[u64]) {
    assert_eq!(got.len(), 2 * MSGS_PER_TAG as usize);
    let (b, a) = got.split_at(MSGS_PER_TAG as usize);
    // Exactly once, in per-tag send order: the dedup window suppressed
    // every duplicate copy and the stream reassembly undid every reorder.
    let expect_b: Vec<u64> = (0..MSGS_PER_TAG).map(|i| 1000 + i).collect();
    let expect_a: Vec<u64> = (0..MSGS_PER_TAG).collect();
    assert_eq!(b, expect_b.as_slice(), "tag-B stream corrupted");
    assert_eq!(a, expect_a.as_slice(), "tag-A stream corrupted");
}

#[test]
fn duplicate_heavy_wan_delivers_each_tagged_message_exactly_once_in_order() {
    let plan = FaultPlan::new(11)
        .drop_prob(0.1)
        .duplicate_prob(0.3)
        .reorder_prob(0.2);
    let report = machine(plan).run(entry).expect("run completes");
    check_delivery(&report.results[2]);
    let totals = report.transport_totals().expect("transport enabled");
    assert!(
        totals.duplicates_suppressed > 0,
        "a 30% duplicate plan must exercise the dedup path, stats: {totals:?}"
    );
    assert!(
        totals.retransmits > 0,
        "a 10% drop plan must force retransmissions, stats: {totals:?}"
    );
    // Every application message was eventually delivered exactly once:
    // 2 tags x MSGS_PER_TAG messages + the final summary message.
    assert_eq!(totals.delivered, 2 * MSGS_PER_TAG + 1);
}

#[test]
fn dedup_under_faults_is_deterministic() {
    let run = || {
        let plan = FaultPlan::new(23)
            .drop_prob(0.15)
            .duplicate_prob(0.25)
            .reorder_prob(0.15);
        let report = machine(plan).run(entry).expect("run completes");
        check_delivery(&report.results[2]);
        let totals = report.transport_totals();
        (
            report.elapsed.as_nanos(),
            report.kernel_stats,
            report.results,
            totals,
        )
    };
    let (e1, k1, r1, t1) = run();
    let (e2, k2, r2, t2) = run();
    assert_eq!(e1, e2, "virtual time must be bit-identical across runs");
    assert_eq!(k1, k2);
    assert_eq!(r1, r2);
    assert_eq!(format!("{t1:?}"), format!("{t2:?}"));
}

#[test]
fn fault_free_transport_suppresses_nothing() {
    // Same program, no fault plan: the dedup window must stay cold and the
    // delivered payloads identical to the faulty runs' (the transport is
    // semantically transparent).
    let spec = das_spec(2, 2, 1.0, 8.0);
    let cfg = TransportConfig {
        retransmit_timeout: SimDuration::from_millis(100),
        ..TransportConfig::for_spec(&spec)
    };
    let report = Machine::new(spec)
        .with_reliable_transport(cfg)
        .time_limit(SimDuration::from_secs(600))
        .run(entry)
        .expect("run completes");
    check_delivery(&report.results[2]);
    let totals = report.transport_totals().expect("transport enabled");
    assert_eq!(totals.duplicates_suppressed, 0);
    assert_eq!(totals.retransmits, 0);
    assert_eq!(totals.delivered, 2 * MSGS_PER_TAG + 1);
}
