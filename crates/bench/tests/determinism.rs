//! Serial-vs-parallel equivalence of the experiment engine.
//!
//! The simulation is deterministic per cell and the engine collects results
//! in canonical cell order, so every artifact a sweep produces must be
//! independent of the worker count: CSV files byte-identical, and the
//! `BENCH_*.json` summaries identical modulo wall-clock timings (and the
//! recorded `jobs` value itself).

use std::fs;
use std::path::{Path, PathBuf};

use numagap_apps::Scale;
use numagap_bench::json::{parse, Json};
use numagap_bench::record::{compare, CompareOpts};
use numagap_bench::targets::{run_target, SweepOpts};

fn opts(jobs: usize, out: &Path) -> SweepOpts {
    SweepOpts {
        scale: Scale::Small,
        quick: true,
        jobs,
        out: out.to_path_buf(),
        progress: false,
        topology: None,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("numagap_determinism_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp out dir");
    dir
}

/// Drops the fields that legitimately differ between two runs of the same
/// sweep: wall-clock timings and the worker count that produced them.
fn strip_nondeterministic(json: Json) -> Json {
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "wall_s" && k != "jobs")
                .map(|(k, v)| (k, strip_nondeterministic(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_nondeterministic).collect()),
        other => other,
    }
}

#[test]
fn fig3_serial_and_parallel_runs_are_equivalent() {
    let d1 = fresh_dir("j1");
    let d8 = fresh_dir("j8");
    let s1 = run_target("fig3", &opts(1, &d1)).expect("serial fig3 sweep");
    let mut s8 = run_target("fig3", &opts(8, &d8)).expect("parallel fig3 sweep");

    // The CSV artifact must be byte-identical at any worker count.
    let csv1 = fs::read(d1.join("fig3.csv")).expect("serial fig3.csv");
    let csv8 = fs::read(d8.join("fig3.csv")).expect("parallel fig3.csv");
    assert_eq!(csv1, csv8, "fig3.csv bytes depend on the worker count");

    // The JSON summaries agree once wall-clock noise is removed.
    let j1 = fs::read_to_string(d1.join("BENCH_fig3.json")).expect("serial summary");
    let j8 = fs::read_to_string(d8.join("BENCH_fig3.json")).expect("parallel summary");
    let j1 = strip_nondeterministic(parse(&j1).expect("serial summary parses"));
    let j8 = strip_nondeterministic(parse(&j8).expect("parallel summary parses"));
    assert_eq!(j1, j8, "BENCH_fig3.json differs beyond wall-clock fields");

    // Compare mode agrees: in virtual-only mode the two runs are clean.
    let virtual_only = CompareOpts {
        wall_clock: false,
        ..CompareOpts::default()
    };
    let report = compare(&s1, &s8, &virtual_only);
    assert!(
        report.is_clean(),
        "virtual-only compare of identical sweeps found: {:?}",
        report.findings
    );

    // ... and a perturbed deterministic field is flagged as a regression.
    s8.records[0].checksum += 1.0;
    let report = compare(&s1, &s8, &virtual_only);
    assert!(
        !report.is_clean(),
        "compare missed a checksum change in cell '{}'",
        s8.records[0].key
    );

    let _ = fs::remove_dir_all(&d1);
    let _ = fs::remove_dir_all(&d8);
}
