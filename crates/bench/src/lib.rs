//! # numagap-bench — the experiment harness
//!
//! One bench target per table/figure of the paper (run with `cargo bench`),
//! all driven by the parallel experiment [`engine`] and shared with the
//! `numagap bench` CLI subcommand through [`targets`]:
//!
//! | Target | Regenerates |
//! |---|---|
//! | `table1` | Table 1 (single-cluster speedups, traffic, runtime) + Table 2 |
//! | `fig1_traffic` | Figure 1 (inter-cluster volume vs message rate) |
//! | `fig3_sweep` | Figure 3 (12 panels of relative speedup vs bandwidth × latency) |
//! | `fig4_comm_time` | Figure 4 (communication time vs bandwidth / latency) |
//! | `hostile` | hostile-network robustness scorecard (slow clusters, cross-traffic, diurnal WAN) |
//! | `topo` | fig3 sensitivity grid per wide-area topology (`--topology` restricts to one shape) |
//! | `scale` | cluster-count scaling sweep (4x8 -> 64x64, 32 -> 4096 ranks) under the N:M rank scheduler, with a legacy-mode differential assert |
//! | `cluster_structure` | §5.1 cluster-structure experiment (8x4 vs 4x8 ...) |
//! | `magpie_bench` | §6 MagPIe collectives vs flat (up to 10x) |
//! | `micro` | Criterion microbenchmarks of the simulator itself |
//!
//! Every engine-backed target writes a versioned `BENCH_<target>.json`
//! summary ([`record`]) next to its CSV artifact; `numagap bench --compare`
//! diffs two such summaries for determinism drift and wall-clock
//! regressions.
//!
//! Environment knobs:
//! * `REPRO_SCALE` = `small` | `medium` (default) | `paper`
//! * `REPRO_QUICK` = `1` — coarse grids for a fast smoke pass
//! * `REPRO_JOBS` = worker threads (default: available parallelism)
//! * `REPRO_OUT` — directory for CSV/JSON output (default `bench_results/`)

#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use numagap_apps::{run_app, AppId, AppRun, Scale, SuiteConfig, Variant};
use numagap_net::{das_spec, WanTopology};
use numagap_rt::Machine;
use numagap_sim::SimDuration;

pub mod engine;
pub mod hostile;
pub mod json;
pub mod record;
pub mod scale;
pub mod selfperf;
pub mod targets;
pub mod topo;

/// The machine size used throughout the paper's main experiments.
pub const CLUSTERS: usize = 4;
/// Processors per cluster in the main experiments.
pub const PROCS_PER_CLUSTER: usize = 8;

/// A benchmark-pipeline failure: either artifact I/O or a simulator error
/// inside a sweep cell. Maps to exit code 2 at the CLI.
#[derive(Debug)]
pub enum BenchError {
    /// Filesystem/stdout failure while writing artifacts.
    Io(io::Error),
    /// A simulation cell failed (deadlock, time limit, panic), or the
    /// request itself was invalid (unknown target).
    Sim(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "i/o error: {e}"),
            BenchError::Sim(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<io::Error> for BenchError {
    fn from(e: io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// Problem scale selected via `REPRO_SCALE` (default: medium).
pub fn scale_from_env() -> Scale {
    match std::env::var("REPRO_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        Ok("paper") => Scale::Paper,
        _ => Scale::Medium,
    }
}

/// Whether `REPRO_QUICK=1` asked for coarse grids.
pub fn quick_from_env() -> bool {
    std::env::var("REPRO_QUICK").as_deref() == Ok("1")
}

/// Output directory for CSV/JSON artifacts (`REPRO_OUT`, default
/// `bench_results/`), created if missing.
///
/// # Errors
///
/// Propagates the directory-creation failure.
pub fn out_dir() -> io::Result<PathBuf> {
    let dir = std::env::var("REPRO_OUT").unwrap_or_else(|_| "bench_results".to_string());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path)?;
    Ok(path)
}

/// Writes CSV rows (with header) to `dir/name`.
///
/// # Errors
///
/// Propagates file-creation and write failures (disk full, read-only
/// output directory) instead of panicking mid-sweep.
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) -> io::Result<()> {
    let path = dir.join(name);
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    println!("  [wrote {}]", path.display());
    Ok(())
}

/// The standard multi-cluster machine with the given WAN parameters.
pub fn wan_machine(latency_ms: f64, bandwidth_mbs: f64) -> Machine {
    Machine::new(das_spec(
        CLUSTERS,
        PROCS_PER_CLUSTER,
        latency_ms,
        bandwidth_mbs,
    ))
}

/// [`wan_machine`] with an optional wide-area wiring override. `None` is
/// exactly `wan_machine` (the DAS full mesh), keeping the committed paper
/// baselines bit-identical.
pub fn wan_machine_with(
    latency_ms: f64,
    bandwidth_mbs: f64,
    topology: Option<WanTopology>,
) -> Machine {
    let spec = das_spec(CLUSTERS, PROCS_PER_CLUSTER, latency_ms, bandwidth_mbs);
    match topology {
        Some(t) => Machine::new(spec.wan_topology(t)),
        None => Machine::new(spec),
    }
}

/// The all-Myrinet single-cluster machine with the same processor count.
pub fn baseline_machine() -> Machine {
    Machine::new(numagap_net::uniform_spec(CLUSTERS * PROCS_PER_CLUSTER))
}

/// Runs an app and panics with context on simulator failure (benches have no
/// graceful recovery path).
pub fn must_run(app: AppId, cfg: &SuiteConfig, variant: Variant, machine: &Machine) -> AppRun {
    run_app(app, cfg, variant, machine).unwrap_or_else(|e| panic!("{app}/{variant} failed: {e}"))
}

/// The paper's relative-speedup metric: `T_singlecluster / T_multicluster`
/// as a percentage (both with the same processor count).
pub fn relative_speedup_pct(baseline: SimDuration, multi: SimDuration) -> f64 {
    100.0 * baseline.as_secs_f64() / multi.as_secs_f64()
}

/// The paper's communication-time metric (Figure 4):
/// `(T_multi - T_single) / T_multi` as a percentage, clamped at 0.
pub fn comm_time_pct(baseline: SimDuration, multi: SimDuration) -> f64 {
    let tm = multi.as_secs_f64();
    let tl = baseline.as_secs_f64();
    (100.0 * (tm - tl) / tm).max(0.0)
}

/// Pretty-prints a latency × bandwidth grid of percentages.
///
/// # Errors
///
/// Propagates stdout write failures (e.g. a closed pipe) instead of
/// panicking.
pub fn print_grid(
    title: &str,
    latencies: &[f64],
    bandwidths: &[f64],
    cells: &[Vec<f64>],
) -> io::Result<()> {
    let stdout = io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "\n  {title}")?;
    write!(out, "    lat\\bw  ")?;
    for bw in bandwidths {
        write!(out, "{bw:>8.2}")?;
    }
    writeln!(out, "  MByte/s")?;
    for (i, lat) in latencies.iter().enumerate() {
        write!(out, "    {lat:>6.1}ms")?;
        for v in &cells[i] {
            write!(out, "{v:>7.1}%")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_metric() {
        let tl = SimDuration::from_millis(50);
        let tm = SimDuration::from_millis(100);
        assert!((relative_speedup_pct(tl, tm) - 50.0).abs() < 1e-12);
        assert!((comm_time_pct(tl, tm) - 50.0).abs() < 1e-12);
        // Faster-than-baseline multi (possible at tiny gaps) clamps comm to 0.
        assert_eq!(comm_time_pct(tm, tl), 0.0);
    }

    #[test]
    fn scale_default_is_medium() {
        // Do not set the env var here (tests run in parallel); just check
        // the default path.
        if std::env::var("REPRO_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::Medium);
        }
    }

    #[test]
    fn write_csv_reports_io_errors() {
        let err = write_csv(Path::new("/nonexistent-dir-for-test"), "x.csv", "h", &[]);
        assert!(err.is_err());
        let bench_err: BenchError = err.unwrap_err().into();
        assert!(bench_err.to_string().contains("i/o error"));
    }
}
