//! # numagap-bench — the experiment harness
//!
//! One bench target per table/figure of the paper (run with `cargo bench`):
//!
//! | Target | Regenerates |
//! |---|---|
//! | `table1` | Table 1 (single-cluster speedups, traffic, runtime) + Table 2 |
//! | `fig1_traffic` | Figure 1 (inter-cluster volume vs message rate) |
//! | `fig3_sweep` | Figure 3 (12 panels of relative speedup vs bandwidth × latency) |
//! | `fig4_comm_time` | Figure 4 (communication time vs bandwidth / latency) |
//! | `cluster_structure` | §5.1 cluster-structure experiment (8x4 vs 4x8 ...) |
//! | `magpie_bench` | §6 MagPIe collectives vs flat (up to 10x) |
//! | `micro` | Criterion microbenchmarks of the simulator itself |
//!
//! Environment knobs:
//! * `REPRO_SCALE` = `small` | `medium` (default) | `paper`
//! * `REPRO_QUICK` = `1` — coarse grids for a fast smoke pass
//! * `REPRO_OUT` — directory for CSV output (default `bench_results/`)

#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use numagap_apps::{run_app, AppId, AppRun, Scale, SuiteConfig, Variant};
use numagap_net::das_spec;
use numagap_rt::Machine;
use numagap_sim::SimDuration;

/// The machine size used throughout the paper's main experiments.
pub const CLUSTERS: usize = 4;
/// Processors per cluster in the main experiments.
pub const PROCS_PER_CLUSTER: usize = 8;

/// Problem scale selected via `REPRO_SCALE` (default: medium).
pub fn scale_from_env() -> Scale {
    match std::env::var("REPRO_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        Ok("paper") => Scale::Paper,
        _ => Scale::Medium,
    }
}

/// Whether `REPRO_QUICK=1` asked for coarse grids.
pub fn quick_from_env() -> bool {
    std::env::var("REPRO_QUICK").as_deref() == Ok("1")
}

/// Output directory for CSV artifacts.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("REPRO_OUT").unwrap_or_else(|_| "bench_results".to_string());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("create output directory");
    path
}

/// Writes CSV rows (with header) to `out_dir()/name`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    println!("  [wrote {}]", path.display());
}

/// The standard multi-cluster machine with the given WAN parameters.
pub fn wan_machine(latency_ms: f64, bandwidth_mbs: f64) -> Machine {
    Machine::new(das_spec(
        CLUSTERS,
        PROCS_PER_CLUSTER,
        latency_ms,
        bandwidth_mbs,
    ))
}

/// The all-Myrinet single-cluster machine with the same processor count.
pub fn baseline_machine() -> Machine {
    Machine::new(numagap_net::uniform_spec(CLUSTERS * PROCS_PER_CLUSTER))
}

/// Runs an app and panics with context on simulator failure (benches have no
/// graceful recovery path).
pub fn must_run(app: AppId, cfg: &SuiteConfig, variant: Variant, machine: &Machine) -> AppRun {
    run_app(app, cfg, variant, machine).unwrap_or_else(|e| panic!("{app}/{variant} failed: {e}"))
}

/// The paper's relative-speedup metric: `T_singlecluster / T_multicluster`
/// as a percentage (both with the same processor count).
pub fn relative_speedup_pct(baseline: SimDuration, multi: SimDuration) -> f64 {
    100.0 * baseline.as_secs_f64() / multi.as_secs_f64()
}

/// The paper's communication-time metric (Figure 4):
/// `(T_multi - T_single) / T_multi` as a percentage, clamped at 0.
pub fn comm_time_pct(baseline: SimDuration, multi: SimDuration) -> f64 {
    let tm = multi.as_secs_f64();
    let tl = baseline.as_secs_f64();
    (100.0 * (tm - tl) / tm).max(0.0)
}

/// Pretty-prints a latency × bandwidth grid of percentages.
pub fn print_grid(title: &str, latencies: &[f64], bandwidths: &[f64], cells: &[Vec<f64>]) {
    println!("\n  {title}");
    print!("    lat\\bw  ");
    for bw in bandwidths {
        print!("{bw:>8.2}");
    }
    println!("  MByte/s");
    for (i, lat) in latencies.iter().enumerate() {
        print!("    {lat:>6.1}ms");
        for v in &cells[i] {
            print!("{v:>7.1}%");
        }
        println!();
    }
}

/// Baseline (single-cluster, 32p) runtimes per app, computed once.
pub fn baselines(cfg: &SuiteConfig, apps: &[AppId]) -> Vec<(AppId, SimDuration)> {
    let machine = baseline_machine();
    apps.iter()
        .map(|&app| {
            let run = must_run(app, cfg, Variant::Unoptimized, &machine);
            (app, run.elapsed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_metric() {
        let tl = SimDuration::from_millis(50);
        let tm = SimDuration::from_millis(100);
        assert!((relative_speedup_pct(tl, tm) - 50.0).abs() < 1e-12);
        assert!((comm_time_pct(tl, tm) - 50.0).abs() < 1e-12);
        // Faster-than-baseline multi (possible at tiny gaps) clamps comm to 0.
        assert_eq!(comm_time_pct(tm, tl), 0.0);
    }

    #[test]
    fn scale_default_is_medium() {
        // Do not set the env var here (tests run in parallel); just check
        // the default path.
        if std::env::var("REPRO_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::Medium);
        }
    }
}
