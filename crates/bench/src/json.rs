//! A minimal JSON value, writer and parser for the benchmark pipeline.
//!
//! The workspace's `serde` dependency is an offline no-op shim (see
//! `shims/serde`), so `BENCH_*.json` summaries are written and read through
//! this hand-rolled module instead — the same approach the tracing layer
//! takes for Chrome trace JSON. The subset implemented is full JSON minus
//! non-finite numbers (which never occur in bench records).
//!
//! Since `numagap serve` feeds this parser raw network bytes, it is
//! hardened for untrusted input: nesting is capped at [`MAX_DEPTH`] (the
//! recursive-descent parser would otherwise overflow the stack), number
//! tokens are capped at [`MAX_NUMBER_LEN`] bytes, and numbers that do not
//! fit a finite `f64` (e.g. `1e400`) are rejected. Every violation is a
//! typed [`JsonError`] with a byte offset — never a panic.

use std::fmt;

/// Maximum container nesting depth accepted by [`parse`]. Hand-written
/// bench artifacts nest 3 deep; 128 leaves generous headroom while keeping
/// adversarial documents (`[[[[…`) from exhausting the parser's stack.
pub const MAX_DEPTH: usize = 128;

/// Maximum accepted length of one number token, in bytes. The bench
/// writers print floats with `{}` (plain decimal, never scientific), so a
/// legitimate token can be long: `f64::MAX` is 309 digits and the smallest
/// denormal about 342 characters. 512 covers every finite `f64` spelling
/// the workspace emits while bounding what an adversarial document can
/// make the scanner chew on.
pub const MAX_NUMBER_LEN: usize = 512;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Stored as `f64`; integers round-trip exactly up to
    /// 2^53, far above any counter the harness records.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in JSON (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first violation —
/// including trailing garbage after an otherwise valid document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    /// Current container nesting depth, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.i,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.b.get(self.i) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(&c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                self.depth -= 1;
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                self.depth -= 1;
                return Ok(Json::Obj(members));
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                            // hex4 leaves `i` one past the last digit;
                            // compensate for the += 1 below.
                            self.i -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .expect("non-empty input: a byte was just peeked");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.i + 4;
        let digits = self
            .b
            .get(self.i..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        self.eat(b'-');
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            if self.i - start >= MAX_NUMBER_LEN {
                return Err(self.err(&format!("number longer than {MAX_NUMBER_LEN} bytes")));
            }
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number '{text}'")))?;
        // `str::parse` saturates huge exponents to infinity; JSON has no
        // non-finite numbers, so an overflowing token is a parse error,
        // not a silent `inf` handed to downstream arithmetic.
        if !n.is_finite() {
            return Err(self.err(&format!("number '{text}' does not fit a finite f64")));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": "x\ny", "d": {}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d").unwrap(), &Json::Obj(vec![]));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t bell\u{7} unicode ✓";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 123456.789012345, f64::MIN_POSITIVE] {
            let doc = format!("{x}");
            assert_eq!(parse(&doc).unwrap().as_f64(), Some(x));
        }
        let big: u64 = 1 << 53;
        assert_eq!(parse(&format!("{big}")).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn control_characters_round_trip() {
        // Every C0 control character must escape to an ASCII form and
        // parse back to itself.
        let all: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let doc = format!("\"{}\"", escape(&all));
        assert!(doc.is_ascii(), "escaped form must stay ASCII: {doc}");
        assert_eq!(parse(&doc).unwrap().as_str(), Some(all.as_str()));
    }

    #[test]
    fn non_ascii_strings_round_trip() {
        for s in [
            "帯域幅と遅延",               // CJK
            "Δλ/Δβ ≤ 0.6",                // Greek + math
            "café naïve",                 // combining-free Latin-1
            "🚀✓\u{1F600}",               // astral-plane emoji
            "mixed ascii + 한국어 + \\n", // literal backslash-n, not a newline
        ] {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(parse(&doc).unwrap().as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn extreme_numbers_round_trip() {
        let big = (1u64 << 53) as f64;
        for x in [
            big,
            -big,
            -1.0,
            -123456.789012345,
            1e-300,
            -2.5e300,
            f64::MAX,
            f64::MIN,
        ] {
            let doc = format!("{x}");
            assert_eq!(parse(&doc).unwrap().as_f64(), Some(x), "{doc}");
        }
        // Exponent spellings normalise to the same value.
        for (doc, want) in [("1e3", 1000.0), ("1E+3", 1000.0), ("-25e-1", -2.5)] {
            assert_eq!(parse(doc).unwrap().as_f64(), Some(want), "{doc}");
        }
        // Negative or fractional numbers are not integers.
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "nul", "\"", "{\"a\" 1}", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_a_typed_error() {
        for (doc, tail_at) in [("{} x", 3), ("[1]]", 3), ("1true", 1), ("null,", 4)] {
            let err = parse(doc).unwrap_err();
            assert_eq!(err.at, tail_at, "{doc:?}: {err}");
            assert!(err.msg.contains("trailing"), "{doc:?}: {err}");
        }
    }

    #[test]
    fn nesting_is_capped_not_stack_overflowed() {
        // One level under the cap parses; at the cap it is a typed error.
        let ok = format!("{}null{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let deep = format!(
            "{}null{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        // An adversarial unterminated ramp (the classic parser-killer)
        // fails fast instead of recursing 100k frames deep.
        let ramp = "[".repeat(100_000);
        let err = parse(&ramp).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        let objs = "{\"a\":".repeat(100_000);
        assert!(parse(&objs).is_err());
        // Mixed nesting counts both container kinds against one cap.
        let mixed = "[{\"k\":".repeat(MAX_DEPTH) + "null";
        assert!(parse(&mixed).unwrap_err().msg.contains("nesting"));
    }

    #[test]
    fn oversized_numbers_are_rejected() {
        // Exponent overflow saturates f64 to infinity; both signs rejected.
        for bad in ["1e400", "-1e400", "1e99999", "-2.5E+308999"] {
            let err = parse(bad).unwrap_err();
            assert!(err.msg.contains("finite"), "{bad}: {err}");
        }
        // Token-length bomb: a number longer than the cap errors instead of
        // scanning unboundedly.
        let long = "1".repeat(MAX_NUMBER_LEN + 1);
        let err = parse(&long).unwrap_err();
        assert!(err.msg.contains("longer"), "{err}");
        // The extremes of f64 still parse: the cap rejects only tokens no
        // finite double can need.
        assert_eq!(
            parse(&format!("{}", f64::MAX)).unwrap().as_f64(),
            Some(f64::MAX)
        );
        assert_eq!(parse("1e308").unwrap().as_f64(), Some(1e308));
        assert_eq!(parse("-4.9e-324").unwrap().as_f64(), Some(-4.9e-324));
    }

    /// Deterministic xorshift for the fuzz-style tests (no external RNG in
    /// the workspace, and tests must reproduce bit-identically).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn malformed_mutations_never_panic() {
        // Byte-level mutations of a valid document: every outcome must be
        // Ok or a typed error — a panic (or non-UTF-8 rejection reached
        // through the &str API) fails the test by unwinding.
        let seed_doc = r#"{"app":"asp","points":[[10.0,0.3],[0.5,6.3]],"mode":"analytic","n":-17}"#;
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..2000 {
            let mut bytes = seed_doc.as_bytes().to_vec();
            let edits = 1 + (xorshift(&mut state) % 4) as usize;
            for _ in 0..edits {
                let pos = (xorshift(&mut state) as usize) % bytes.len();
                match xorshift(&mut state) % 3 {
                    0 => bytes[pos] = (xorshift(&mut state) % 128) as u8,
                    1 => {
                        bytes.remove(pos);
                        if bytes.is_empty() {
                            bytes.push(b'0');
                        }
                    }
                    _ => bytes.insert(pos, (xorshift(&mut state) % 128) as u8),
                }
            }
            if let Ok(s) = std::str::from_utf8(&bytes) {
                let _ = parse(s);
            }
        }
    }

    /// Serializes a [`Json`] value back to text the way the bench writers
    /// do (shortest-round-trip floats, escaped strings).
    fn unparse(v: &Json) -> String {
        match v {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => format!("{n}"),
            Json::Str(s) => format!("\"{}\"", escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(unparse).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(members) => {
                let inner: Vec<String> = members
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), unparse(v)))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }

    /// Builds a pseudo-random document of bounded depth from the seed.
    fn gen_doc(state: &mut u64, depth: usize) -> Json {
        match if depth == 0 {
            xorshift(state) % 4
        } else {
            xorshift(state) % 6
        } {
            0 => Json::Null,
            1 => Json::Bool(xorshift(state).is_multiple_of(2)),
            2 => {
                // Integers and dyadic fractions round-trip exactly through
                // shortest-form printing.
                let n = (xorshift(state) % 2_000_000) as i64 - 1_000_000;
                Json::Num(n as f64 / 64.0)
            }
            3 => {
                let len = xorshift(state) % 12;
                Json::Str(
                    (0..len)
                        .map(|_| char::from_u32((xorshift(state) % 0xD7FF) as u32).unwrap_or('x'))
                        .collect(),
                )
            }
            4 => Json::Arr(
                (0..xorshift(state) % 5)
                    .map(|_| gen_doc(state, depth - 1))
                    .collect(),
            ),
            _ => Json::Obj(
                (0..xorshift(state) % 5)
                    .map(|i| (format!("k{i}"), gen_doc(state, depth - 1)))
                    .collect(),
            ),
        }
    }

    #[test]
    fn generated_documents_round_trip() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for case in 0..500 {
            let doc = gen_doc(&mut state, 4);
            let text = unparse(&doc);
            let back = parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(back, doc, "case {case}: {text}");
        }
    }
}
