//! Engine-backed experiment targets: the sweeps behind Table 1 and
//! Figures 1/3/4, shared by the `cargo bench` binaries and the
//! `numagap bench` CLI subcommand.
//!
//! Each target enumerates its cells in a fixed canonical order, fans them
//! across the [`crate::engine`] worker pool, then renders stdout tables,
//! the CSV artifact and the versioned `BENCH_<target>.json` summary from
//! the collected results — so every artifact is byte-identical no matter
//! how many workers ran the sweep (wall-clock fields in the JSON excepted).

use std::io;
use std::path::PathBuf;
use std::time::Instant;

use numagap_apps::{run_app, AppId, AppRun, Scale, SuiteConfig, Variant};
use numagap_net::{
    uniform_spec, WanTopology, FIG1_BANDWIDTH_MBS, FIG1_LATENCY_MS, FIG4_FIXED_BANDWIDTH_MBS,
    FIG4_FIXED_LATENCY_MS, PAPER_BANDWIDTHS_MBS, PAPER_LATENCIES_MS,
};
use numagap_rt::Machine;

use crate::record::{BenchSummary, RunRecord};
use crate::{
    baseline_machine, comm_time_pct, engine, out_dir, print_grid, quick_from_env,
    relative_speedup_pct, scale_from_env, wan_machine_with, write_csv, BenchError,
};

/// Every engine-backed target, in the order `--target all` runs them.
pub const TARGETS: [&str; 7] = ["table1", "fig1", "fig3", "fig4", "hostile", "topo", "scale"];

/// Options for one engine-backed sweep.
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Problem scale.
    pub scale: Scale,
    /// Use the coarse quick grid (`REPRO_QUICK=1`).
    pub quick: bool,
    /// Worker threads.
    pub jobs: usize,
    /// Output directory for CSV + JSON artifacts.
    pub out: PathBuf,
    /// Maintain a progress line on stderr.
    pub progress: bool,
    /// Wide-area wiring override (`--topology`). `None` keeps each target's
    /// default: the paper targets run the DAS full mesh bit-identically to
    /// builds without this field, and the `topo` target sweeps its whole
    /// canonical shape list. `Some` re-wires the paper/hostile sweep
    /// machines, and restricts `topo` to that single shape.
    pub topology: Option<WanTopology>,
}

impl SweepOpts {
    /// Options from the environment knobs (`REPRO_SCALE`, `REPRO_QUICK`,
    /// `REPRO_JOBS`, `REPRO_OUT`) — what the `cargo bench` binaries use.
    ///
    /// # Errors
    ///
    /// Propagates failure to create the output directory.
    pub fn from_env() -> io::Result<Self> {
        Ok(SweepOpts {
            scale: scale_from_env(),
            quick: quick_from_env(),
            jobs: engine::jobs_from_env(),
            out: out_dir()?,
            progress: true,
            topology: None,
        })
    }

    /// Validates the topology override against the paper machine's cluster
    /// count and returns it.
    ///
    /// # Errors
    ///
    /// [`BenchError::Sim`] (exit code 2 at the CLI) when the requested
    /// shape does not fit [`crate::CLUSTERS`] clusters.
    pub fn checked_topology(&self) -> Result<Option<WanTopology>, BenchError> {
        if let Some(t) = self.topology {
            t.validate(crate::CLUSTERS)
                .map_err(|e| BenchError::Sim(format!("--topology: {e}")))?;
        }
        Ok(self.topology)
    }

    fn scale_name(&self) -> String {
        format!("{:?}", self.scale).to_ascii_lowercase()
    }

    fn label<'a>(&self, name: &'a str) -> Option<&'a str> {
        if self.progress {
            Some(name)
        } else {
            None
        }
    }
}

/// Runs one named target ([`TARGETS`]).
///
/// # Errors
///
/// Unknown target names, simulator failures in any cell, and artifact I/O.
pub fn run_target(name: &str, opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    match name {
        "table1" => run_table1(opts),
        "fig1" => run_fig1(opts),
        "fig3" => run_fig3(opts),
        "fig4" => run_fig4(opts),
        "hostile" => crate::hostile::run_hostile(opts),
        "topo" => crate::topo::run_topo(opts),
        "scale" => crate::scale::run_scale(opts),
        other => Err(BenchError::Sim(format!(
            "unknown bench target '{other}' (expected one of {})",
            TARGETS.join(", ")
        ))),
    }
}

/// The variants the paper reports for an app (FFT has no optimized one).
pub fn variants(app: AppId) -> &'static [Variant] {
    if app.has_optimized() {
        &[Variant::Unoptimized, Variant::Optimized]
    } else {
        &[Variant::Unoptimized]
    }
}

/// The variant Figure 4 measures: the surviving (optimized where found) one.
fn surviving_variant(app: AppId) -> Variant {
    if app.has_optimized() {
        Variant::Optimized
    } else {
        Variant::Unoptimized
    }
}

/// The Figure 3/4 grid: the paper's full 7x6, or the coarse quick one.
/// Shared with `numagap-model`'s predict sweep so predicted and simulated
/// curves cover identical (latency, bandwidth) points.
pub fn paper_grid(quick: bool) -> (Vec<f64>, Vec<f64>) {
    if quick {
        (vec![0.5, 10.0, 300.0], vec![6.3, 0.3, 0.03])
    } else {
        (PAPER_LATENCIES_MS.to_vec(), PAPER_BANDWIDTHS_MBS.to_vec())
    }
}

/// Runs every cell through the engine; a failing cell aborts the sweep
/// with its app/variant named. Each result carries its wall-clock seconds.
fn sweep<C: Sync>(
    cells: &[C],
    opts: &SweepOpts,
    label: &str,
    run: impl Fn(&C) -> (String, Result<AppRun, String>) + Sync,
) -> Result<Vec<(AppRun, f64)>, BenchError> {
    let outs = engine::run_cells(cells, opts.jobs, opts.label(label), |_, cell| {
        let start = Instant::now();
        let (what, result) = run(cell);
        (what, result, start.elapsed().as_secs_f64())
    });
    outs.into_iter()
        .map(|(what, result, wall)| match result {
            Ok(run) => Ok((run, wall)),
            Err(e) => Err(BenchError::Sim(format!("{what} failed: {e}"))),
        })
        .collect()
}

fn app_cell(
    app: AppId,
    cfg: &SuiteConfig,
    variant: Variant,
    machine: &Machine,
) -> (String, Result<AppRun, String>) {
    (
        format!("{app}/{variant}"),
        run_app(app, cfg, variant, machine).map_err(|e| e.to_string()),
    )
}

/// Figure 3: 12 panels of relative speedup across the bandwidth × latency
/// grid, all (baseline + grid) cells fanned across the worker pool.
pub fn run_fig3(opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    enum Cell {
        Base(AppId),
        Grid(AppId, Variant, f64, f64),
    }
    let cfg = SuiteConfig::at(opts.scale);
    let topology = opts.checked_topology()?;
    let (lats, bws) = paper_grid(opts.quick);
    let mut cells = Vec::new();
    for app in AppId::ALL {
        cells.push(Cell::Base(app));
    }
    for app in AppId::ALL {
        for &variant in variants(app) {
            for &lat in &lats {
                for &bw in &bws {
                    cells.push(Cell::Grid(app, variant, lat, bw));
                }
            }
        }
    }
    println!("== Figure 3: speedup relative to an all-Myrinet cluster ==");
    println!(
        "   scale={:?} quick={} jobs={} machine=4x8, grid {}x{}, {} cells",
        opts.scale,
        opts.quick,
        opts.jobs,
        lats.len(),
        bws.len(),
        cells.len()
    );
    let t0 = Instant::now();
    let outs = sweep(&cells, opts, "fig3", |cell| match *cell {
        Cell::Base(app) => app_cell(app, &cfg, Variant::Unoptimized, &baseline_machine()),
        Cell::Grid(app, variant, lat, bw) => {
            app_cell(app, &cfg, variant, &wan_machine_with(lat, bw, topology))
        }
    })?;
    let mut summary = BenchSummary::new("fig3", opts.scale_name(), opts.quick, opts.jobs);
    summary.wall_s = t0.elapsed().as_secs_f64();

    // Baselines land first (enumeration order).
    let mut base = Vec::new();
    for (cell, (run, wall)) in cells.iter().zip(&outs) {
        if let Cell::Base(app) = cell {
            base.push((*app, run.elapsed));
            summary
                .records
                .push(RunRecord::from_run(format!("baseline/{app}"), *wall, run));
        }
    }
    let baseline_of = |app: AppId| {
        base.iter()
            .find(|(a, _)| *a == app)
            .expect("baseline ran")
            .1
    };

    // Render panels and rows in canonical cell order.
    let mut rows = Vec::new();
    let mut grid_cells: Vec<Vec<f64>> = Vec::new();
    let mut grid_row: Vec<f64> = Vec::new();
    for (cell, (run, wall)) in cells.iter().zip(&outs) {
        let Cell::Grid(app, variant, lat, bw) = cell else {
            continue;
        };
        let tl = baseline_of(*app);
        if *variant == Variant::Unoptimized
            && grid_cells.is_empty()
            && grid_row.is_empty()
            && *lat == lats[0]
            && *bw == bws[0]
        {
            println!("\n{app}: all-Myrinet 32p runtime {:.3}s", tl.as_secs_f64());
        }
        let pct = relative_speedup_pct(tl, run.elapsed);
        rows.push(format!(
            "{app},{variant},{lat},{bw},{pct:.2},{:.6}",
            run.elapsed.as_secs_f64()
        ));
        summary.records.push(RunRecord::from_run(
            format!("{app}/{variant}/lat{lat}/bw{bw}"),
            *wall,
            run,
        ));
        grid_row.push(pct);
        if grid_row.len() == bws.len() {
            grid_cells.push(std::mem::take(&mut grid_row));
            if grid_cells.len() == lats.len() {
                print_grid(
                    &format!("{app}, {variant}, 32 processors, 4 clusters"),
                    &lats,
                    &bws,
                    &grid_cells,
                )?;
                grid_cells.clear();
            }
        }
    }
    write_csv(
        &opts.out,
        "fig3.csv",
        "app,variant,latency_ms,bandwidth_mbs,rel_speedup_pct,elapsed_s",
        &rows,
    )?;
    write_summary(&summary, opts)?;
    Ok(summary)
}

/// Figure 4: communication-time share — bandwidth sweep at a fixed latency
/// and latency sweep at a fixed bandwidth, surviving variants.
pub fn run_fig4(opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    enum Cell {
        Base(AppId),
        Bw(AppId, f64),
        Lat(AppId, f64),
    }
    let cfg = SuiteConfig::at(opts.scale);
    let topology = opts.checked_topology()?;
    let (lats, bws) = paper_grid(opts.quick);
    let mut cells = Vec::new();
    for app in AppId::ALL {
        cells.push(Cell::Base(app));
    }
    for app in AppId::ALL {
        for &bw in &bws {
            cells.push(Cell::Bw(app, bw));
        }
    }
    for app in AppId::ALL {
        for &lat in &lats {
            cells.push(Cell::Lat(app, lat));
        }
    }
    println!(
        "== Figure 4: inter-cluster communication time (scale={:?}, jobs={}) ==",
        opts.scale, opts.jobs
    );
    let t0 = Instant::now();
    let outs = sweep(&cells, opts, "fig4", |cell| match *cell {
        Cell::Base(app) => app_cell(app, &cfg, Variant::Unoptimized, &baseline_machine()),
        Cell::Bw(app, bw) => app_cell(
            app,
            &cfg,
            surviving_variant(app),
            &wan_machine_with(FIG4_FIXED_LATENCY_MS, bw, topology),
        ),
        Cell::Lat(app, lat) => app_cell(
            app,
            &cfg,
            surviving_variant(app),
            &wan_machine_with(lat, FIG4_FIXED_BANDWIDTH_MBS, topology),
        ),
    })?;
    let mut summary = BenchSummary::new("fig4", opts.scale_name(), opts.quick, opts.jobs);
    summary.wall_s = t0.elapsed().as_secs_f64();
    let mut base = Vec::new();
    for (cell, (run, wall)) in cells.iter().zip(&outs) {
        if let Cell::Base(app) = cell {
            base.push((*app, run.elapsed));
            summary
                .records
                .push(RunRecord::from_run(format!("baseline/{app}"), *wall, run));
        }
    }
    let baseline_of = |app: AppId| {
        base.iter()
            .find(|(a, _)| *a == app)
            .expect("baseline ran")
            .1
    };

    let mut rows = Vec::new();
    println!("\n-- left: sweep bandwidth at {FIG4_FIXED_LATENCY_MS} ms latency --");
    println!("{:<12} comm% per bandwidth (descending MB/s)", "Program");
    let mut current: Option<AppId> = None;
    for (cell, (run, wall)) in cells.iter().zip(&outs) {
        let Cell::Bw(app, bw) = cell else { continue };
        if current != Some(*app) {
            if current.is_some() {
                println!();
            }
            print!("{:<12}", app.to_string());
            current = Some(*app);
        }
        let pct = comm_time_pct(baseline_of(*app), run.elapsed);
        print!(" {pct:>6.1}%");
        rows.push(format!(
            "{app},bandwidth_sweep,{FIG4_FIXED_LATENCY_MS},{bw},{pct:.2}"
        ));
        summary.records.push(RunRecord::from_run(
            format!("{app}/bw{bw}@lat{FIG4_FIXED_LATENCY_MS}"),
            *wall,
            run,
        ));
    }
    println!();
    println!("\n-- right: sweep latency at {FIG4_FIXED_BANDWIDTH_MBS} MB/s --");
    println!("{:<12} comm% per latency (ascending ms)", "Program");
    let mut current: Option<AppId> = None;
    for (cell, (run, wall)) in cells.iter().zip(&outs) {
        let Cell::Lat(app, lat) = cell else { continue };
        if current != Some(*app) {
            if current.is_some() {
                println!();
            }
            print!("{:<12}", app.to_string());
            current = Some(*app);
        }
        let pct = comm_time_pct(baseline_of(*app), run.elapsed);
        print!(" {pct:>6.1}%");
        rows.push(format!(
            "{app},latency_sweep,{lat},{FIG4_FIXED_BANDWIDTH_MBS},{pct:.2}"
        ));
        summary.records.push(RunRecord::from_run(
            format!("{app}/lat{lat}@bw{FIG4_FIXED_BANDWIDTH_MBS}"),
            *wall,
            run,
        ));
    }
    println!();
    write_csv(
        &opts.out,
        "fig4.csv",
        "app,sweep,latency_ms,bandwidth_mbs,comm_time_pct",
        &rows,
    )?;
    write_summary(&summary, opts)?;
    Ok(summary)
}

/// Table 1: single-cluster speedups (1, 8, 32 processors) per app, plus the
/// static Table 2 listing.
pub fn run_table1(opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    let cfg = SuiteConfig::at(opts.scale);
    let procs = [1usize, 8, 32];
    let mut cells = Vec::new();
    for app in AppId::ALL {
        for &p in &procs {
            cells.push((app, p));
        }
    }
    println!(
        "== Table 1: single-cluster performance (scale={:?}, jobs={}) ==\n",
        opts.scale, opts.jobs
    );
    let t0 = Instant::now();
    let outs = sweep(&cells, opts, "table1", |&(app, p)| {
        app_cell(
            app,
            &cfg,
            Variant::Unoptimized,
            &Machine::new(uniform_spec(p)),
        )
    })?;
    let mut summary = BenchSummary::new("table1", opts.scale_name(), opts.quick, opts.jobs);
    summary.wall_s = t0.elapsed().as_secs_f64();
    for (&(app, p), (run, wall)) in cells.iter().zip(&outs) {
        summary
            .records
            .push(RunRecord::from_run(format!("{app}/p{p}"), *wall, run));
    }
    let run_of = |app: AppId, p: usize| {
        let idx = cells
            .iter()
            .position(|&c| c == (app, p))
            .expect("cell enumerated");
        &outs[idx].0
    };
    println!(
        "{:<12} {:>12} {:>12} {:>16} {:>14}",
        "Program", "Speedup 32p", "Speedup 8p", "Traffic MB/s@32", "Runtime 32p(s)"
    );
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let serial = run_of(app, 1);
        let p8 = run_of(app, 8);
        let p32 = run_of(app, 32);
        let s8 = serial.elapsed.as_secs_f64() / p8.elapsed.as_secs_f64();
        let s32 = serial.elapsed.as_secs_f64() / p32.elapsed.as_secs_f64();
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>16.2} {:>14.3}",
            app.to_string(),
            s32,
            s8,
            p32.total_mbs,
            p32.elapsed.as_secs_f64()
        );
        rows.push(format!(
            "{app},{s32:.2},{s8:.2},{:.3},{:.6},{:.6}",
            p32.total_mbs,
            p32.elapsed.as_secs_f64(),
            serial.elapsed.as_secs_f64()
        ));
    }
    write_csv(
        &opts.out,
        "table1.csv",
        "app,speedup32,speedup8,traffic_mbs_32,runtime32_s,runtime1_s",
        &rows,
    )?;
    println!("\n== Table 2: communication patterns and optimizations ==\n");
    println!(
        "{:<12} {:<28} {:<30}",
        "Program", "Communication", "Optimization"
    );
    for app in AppId::ALL {
        println!(
            "{:<12} {:<28} {:<30}",
            app.to_string(),
            app.pattern(),
            app.optimization()
        );
    }
    write_summary(&summary, opts)?;
    Ok(summary)
}

/// Figure 1: inter-cluster volume vs message rate for the original
/// programs at the 0.5 ms / 6 MB/s operating point.
pub fn run_fig1(opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    let cfg = SuiteConfig::at(opts.scale);
    let topology = opts.checked_topology()?;
    let cells = AppId::ALL.to_vec();
    println!(
        "== Figure 1: inter-cluster traffic, 4 clusters x 8, link {} ms / {} MB/s \
         (scale={:?}, jobs={}) ==\n",
        FIG1_LATENCY_MS, FIG1_BANDWIDTH_MBS, opts.scale, opts.jobs
    );
    let t0 = Instant::now();
    let outs = sweep(&cells, opts, "fig1", |&app| {
        app_cell(
            app,
            &cfg,
            Variant::Unoptimized,
            &wan_machine_with(FIG1_LATENCY_MS, FIG1_BANDWIDTH_MBS, topology),
        )
    })?;
    let mut summary = BenchSummary::new("fig1", opts.scale_name(), opts.quick, opts.jobs);
    summary.wall_s = t0.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>16} {:>16} {:>12}",
        "Program", "Volume MB/s/clus", "Messages/s/clus", "Runtime (s)"
    );
    let mut rows = Vec::new();
    for (app, (run, wall)) in cells.iter().zip(&outs) {
        println!(
            "{:<12} {:>16.3} {:>16.0} {:>12.3}",
            app.to_string(),
            run.inter_mbs_per_cluster,
            run.inter_msgs_per_cluster,
            run.elapsed.as_secs_f64()
        );
        rows.push(format!(
            "{app},{:.4},{:.1},{:.6}",
            run.inter_mbs_per_cluster,
            run.inter_msgs_per_cluster,
            run.elapsed.as_secs_f64()
        ));
        summary.records.push(RunRecord::from_run(
            format!("{app}/unoptimized"),
            *wall,
            run,
        ));
    }
    write_csv(
        &opts.out,
        "fig1.csv",
        "app,inter_mbs_per_cluster,inter_msgs_per_sec_per_cluster,elapsed_s",
        &rows,
    )?;
    write_summary(&summary, opts)?;
    Ok(summary)
}

fn write_summary(summary: &BenchSummary, opts: &SweepOpts) -> Result<(), BenchError> {
    let path = opts.out.join(format!("BENCH_{}.json", summary.target));
    summary.write(&path)?;
    println!("  [wrote {}]", path.display());
    Ok(())
}
