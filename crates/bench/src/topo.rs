//! The `topo` target: the fig3 sensitivity grid re-run per wide-area
//! topology, answering the ROADMAP question — which cluster-aware
//! optimizations survive multi-hop contention?
//!
//! The paper's wide-area layer is a fully connected mesh, so every
//! inter-cluster message has a private link and the sensitivity results in
//! fig1/fig3 never see shared intermediate hops. This target re-runs the
//! fig3 latency × bandwidth grid on the paper's 4×8 machine under each
//! shape of the canonical list below, recording both the fig3 metric
//! (relative speedup vs the all-Myrinet cluster) and the fig1 traffic
//! metrics per cell, then prints a scorecard at the 10 ms / 0.3 MB/s
//! operating point: how much of the unoptimized makespan each paper
//! optimization still saves per topology.
//!
//! Every cell is a pure deterministic simulation, so `topo.csv` and
//! `BENCH_topo.json` are byte-identical for any `--jobs` value and the
//! committed quick baseline is compared exactly in CI
//! (`numagap bench --compare ... --virtual-only`).

use std::time::Instant;

use numagap_apps::{run_app, AppId, SuiteConfig, Variant};
use numagap_net::WanTopology;

use crate::record::{BenchSummary, RunRecord};
use crate::targets::{paper_grid, variants, SweepOpts};
use crate::{
    baseline_machine, engine, relative_speedup_pct, wan_machine_with, write_csv, BenchError,
};

/// WAN latency (ms) of the scorecard's operating point — present in both
/// the quick and the full fig3 grid.
pub const TOPO_SCORE_LATENCY_MS: f64 = 10.0;
/// WAN bandwidth (MByte/s) of the scorecard's operating point.
pub const TOPO_SCORE_BANDWIDTH_MBS: f64 = 0.3;

/// The canonical shape list for the paper's 4-cluster machine, in sweep
/// order (the committed baseline pins it). The 3D torus needs 8 clusters
/// and is reachable via `--topology torus:2x2x2 --clusters 8` instead.
pub fn canonical_shapes() -> Vec<WanTopology> {
    vec![
        WanTopology::FullMesh,
        WanTopology::Star { hub: 0 },
        WanTopology::Ring,
        WanTopology::Line,
        WanTopology::Torus2d { x: 2, y: 2 },
        WanTopology::FatTree { pod: 2 },
        WanTopology::Dragonfly { groups: 2 },
    ]
}

/// One topo sweep cell: an all-Myrinet baseline run, or a grid point under
/// one wide-area shape.
enum Cell {
    Base(AppId),
    Grid(usize, AppId, Variant, f64, f64),
}

/// Runs the topo target: baselines plus the shapes × apps × variants ×
/// grid matrix through the worker pool, a per-topology fig3 table and the
/// hop-contention scorecard on stdout, `topo.csv`, and `BENCH_topo.json`.
/// With `--topology` the sweep restricts to that single shape.
///
/// # Errors
///
/// An invalid `--topology` for the 4-cluster machine, simulator failures
/// in any cell, and artifact I/O.
pub fn run_topo(opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    let cfg = SuiteConfig::at(opts.scale);
    let shapes = match opts.checked_topology()? {
        Some(t) => vec![t],
        None => canonical_shapes(),
    };
    let (lats, bws) = paper_grid(opts.quick);
    let mut cells = Vec::new();
    for app in AppId::ALL {
        cells.push(Cell::Base(app));
    }
    for (ti, _) in shapes.iter().enumerate() {
        for app in AppId::ALL {
            for &variant in variants(app) {
                for &lat in &lats {
                    for &bw in &bws {
                        cells.push(Cell::Grid(ti, app, variant, lat, bw));
                    }
                }
            }
        }
    }
    println!("== topo: fig3 sensitivity per wide-area topology ==");
    println!(
        "   scale={:?} quick={} jobs={} machine=4x8, grid {}x{}, {} shapes, {} cells",
        opts.scale,
        opts.quick,
        opts.jobs,
        lats.len(),
        bws.len(),
        shapes.len(),
        cells.len()
    );
    for t in &shapes {
        println!("   {}", t.label());
    }
    let t0 = Instant::now();
    let label = if opts.progress { Some("topo") } else { None };
    let outs = engine::run_cells(&cells, opts.jobs, label, |_, cell| {
        let start = Instant::now();
        let (what, result) = match *cell {
            Cell::Base(app) => (
                format!("baseline/{app}"),
                run_app(app, &cfg, Variant::Unoptimized, &baseline_machine()),
            ),
            Cell::Grid(ti, app, variant, lat, bw) => (
                format!("{}/{app}/{variant}", shapes[ti].flag()),
                run_app(
                    app,
                    &cfg,
                    variant,
                    &wan_machine_with(lat, bw, Some(shapes[ti])),
                ),
            ),
        };
        (
            what,
            result.map_err(|e| e.to_string()),
            start.elapsed().as_secs_f64(),
        )
    });
    let outs = outs
        .into_iter()
        .map(|(what, result, wall)| match result {
            Ok(run) => Ok((run, wall)),
            Err(e) => Err(BenchError::Sim(format!("{what} failed: {e}"))),
        })
        .collect::<Result<Vec<_>, BenchError>>()?;
    let scale_name = format!("{:?}", opts.scale).to_ascii_lowercase();
    let mut summary = BenchSummary::new("topo", scale_name, opts.quick, opts.jobs);
    summary.wall_s = t0.elapsed().as_secs_f64();

    // Baselines land first (enumeration order).
    let mut base = Vec::new();
    for (cell, (run, wall)) in cells.iter().zip(&outs) {
        if let Cell::Base(app) = cell {
            base.push((*app, run.elapsed));
            summary
                .records
                .push(RunRecord::from_run(format!("baseline/{app}"), *wall, run));
        }
    }
    let baseline_of = |app: AppId| {
        base.iter()
            .find(|(a, _)| *a == app)
            .expect("baseline ran")
            .1
    };

    let mut rows = Vec::new();
    // (shape index, app, variant) -> makespan seconds at the scorecard
    // point, canonical order.
    let mut score: Vec<(usize, AppId, Variant, f64)> = Vec::new();
    for (cell, (run, wall)) in cells.iter().zip(&outs) {
        let Cell::Grid(ti, app, variant, lat, bw) = cell else {
            continue;
        };
        let shape = shapes[*ti].flag();
        let pct = relative_speedup_pct(baseline_of(*app), run.elapsed);
        rows.push(format!(
            "{shape},{app},{variant},{lat},{bw},{pct:.2},{:.6},{:.4},{}",
            run.elapsed.as_secs_f64(),
            run.inter_mbs_per_cluster,
            run.net.inter_msgs
        ));
        summary.records.push(RunRecord::from_run(
            format!("{shape}/{app}/{variant}/lat{lat}/bw{bw}"),
            *wall,
            run,
        ));
        if *lat == TOPO_SCORE_LATENCY_MS && *bw == TOPO_SCORE_BANDWIDTH_MBS {
            score.push((*ti, *app, *variant, run.elapsed.as_secs_f64()));
        }
    }
    let time_of = |ti: usize, app: AppId, variant: Variant| {
        score
            .iter()
            .find(|&&(t, a, v, _)| t == ti && a == app && v == variant)
            .map(|&(_, _, _, s)| s)
            .expect("scorecard point is on every grid")
    };

    // Per-topology fig3 view at the scorecard point: relative speedup of
    // the surviving variant, per shape.
    println!(
        "\nrelative speedup at {TOPO_SCORE_LATENCY_MS} ms / \
         {TOPO_SCORE_BANDWIDTH_MBS} MB/s (optimized where available, % of \
         the all-Myrinet runtime; higher is better):"
    );
    print!("{:<12}", "Program");
    for t in &shapes {
        print!(" {:>11}", t.flag());
    }
    println!();
    for app in AppId::ALL {
        let variant = if app.has_optimized() {
            Variant::Optimized
        } else {
            Variant::Unoptimized
        };
        print!("{:<12}", app.to_string());
        for ti in 0..shapes.len() {
            let tl = baseline_of(app).as_secs_f64();
            let pct = 100.0 * tl / time_of(ti, app, variant);
            print!(" {pct:>10.1}%");
        }
        println!();
    }

    // The scorecard: does each paper optimization survive hop contention?
    println!(
        "\noptimization win per topology (unoptimized -> optimized makespan \
         reduction, % of unoptimized; negative = the optimization hurts):"
    );
    print!("{:<12}", "Program");
    for t in &shapes {
        print!(" {:>11}", t.flag());
    }
    println!();
    for app in AppId::ALL {
        if !app.has_optimized() {
            continue;
        }
        print!("{:<12}", app.to_string());
        for ti in 0..shapes.len() {
            let unopt = time_of(ti, app, Variant::Unoptimized);
            let opt = time_of(ti, app, Variant::Optimized);
            let w = 100.0 * (unopt - opt) / unopt;
            print!(" {w:>10.1}%");
        }
        println!();
    }
    println!("  (fft has no optimized variant and is excluded from the scorecard)");

    write_csv(
        &opts.out,
        "topo.csv",
        "topology,app,variant,latency_ms,bandwidth_mbs,rel_speedup_pct,elapsed_s,\
         inter_mbs_per_cluster,inter_msgs",
        &rows,
    )?;
    let path = opts.out.join("BENCH_topo.json");
    summary.write(&path)?;
    println!("  [wrote {}]", path.display());
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{compare, CompareOpts};
    use numagap_apps::Scale;

    fn opts(dir: &std::path::Path, topology: Option<WanTopology>) -> SweepOpts {
        SweepOpts {
            scale: Scale::Small,
            quick: true,
            jobs: 4,
            out: dir.to_path_buf(),
            progress: false,
            topology,
        }
    }

    #[test]
    fn canonical_shapes_fit_the_paper_machine() {
        for shape in canonical_shapes() {
            shape
                .validate(crate::CLUSTERS)
                .expect("shape fits 4 clusters");
        }
        // The scorecard point is on both grids.
        for quick in [false, true] {
            let (lats, bws) = paper_grid(quick);
            assert!(lats.contains(&TOPO_SCORE_LATENCY_MS));
            assert!(bws.contains(&TOPO_SCORE_BANDWIDTH_MBS));
        }
    }

    #[test]
    fn misfit_topology_is_a_sim_error() {
        let dir = std::env::temp_dir().join("numagap-topo-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_topo(&opts(&dir, Some(WanTopology::Torus2d { x: 3, y: 2 })));
        match err {
            Err(BenchError::Sim(msg)) => assert!(msg.contains("--topology"), "{msg}"),
            other => panic!("expected a Sim error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topo_sweep_is_deterministic_over_a_single_shape() {
        let dir = std::env::temp_dir().join("numagap-topo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = run_topo(&opts(&dir, Some(WanTopology::Ring))).unwrap();
        let b = run_topo(&opts(&dir, Some(WanTopology::Ring))).unwrap();
        // 6 baselines + 11 app/variants x 3x3 quick grid x 1 shape.
        assert_eq!(a.records.len(), 6 + 11 * 9);
        let rep = compare(
            &a,
            &b,
            &CompareOpts {
                wall_clock: false,
                ..CompareOpts::default()
            },
        );
        assert!(rep.is_clean(), "{:?}", rep.findings);
        let loaded = BenchSummary::load(&dir.join("BENCH_topo.json")).unwrap();
        assert_eq!(loaded, b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
