//! The `scale` target: cluster-count scaling sweep for the N:M rank
//! scheduler.
//!
//! The paper targets all run the fixed 4x8 machine; this target is about
//! the *simulator*, not the paper's applications: it sweeps the cluster
//! count 4 -> 64 (32 -> 4096 ranks) through a synthetic SPMD workload and
//! records, per cell, the virtual makespan, message counts, checksum and
//! the peak simulator thread count. Every machine size runs under the N:M
//! worker pool (several worker counts in the full sweep) and — up to a
//! rank-count ceiling — under the legacy one-thread-per-rank scheduler,
//! and the target itself asserts their virtual times are bit-identical:
//! the sweep doubles as a differential test of the scheduler at sizes the
//! unit suites never reach.
//!
//! The workload is three nearest-neighbour ring rounds followed by a
//! binomial-tree reduction to rank 0 and a binomial-tree broadcast back —
//! the communication skeleton the paper's applications share — so cells
//! stress the scheduler's park/wake path (every rendezvous parks a rank)
//! without dragging application problem-size knobs into the grid. The
//! summary's `scale` is always `"synthetic"` for that reason, like
//! `selfperf`.

use std::time::Instant;

use numagap_net::das_spec;
use numagap_rt::{Ctx, Machine};
use numagap_sim::{SchedMode, SimDuration, Tag};

use crate::record::{BenchSummary, RunRecord};
use crate::targets::SweepOpts;
use crate::{engine, write_csv, BenchError};

/// The swept machine sizes, smallest first: `(clusters, procs_per_cluster)`.
/// Rank counts are 32, 128, 512, 2048 and 4096 — all powers of two, which
/// the binomial workload phases rely on.
pub const SCALE_SIZES: [(usize, usize); 5] = [(4, 8), (8, 16), (16, 32), (32, 64), (64, 64)];

/// Ranks above this ceiling skip the legacy scheduler cell: one OS thread
/// per rank is exactly the regime the worker pool exists to avoid, and
/// spawning 4096 threads is hostile to CI runners.
pub const LEGACY_MAX_RANKS: usize = 2048;

/// Per-rank execution-context stack for scale cells. The synthetic workload
/// has a shallow call graph, and 4096 ranks at the default 8 MiB would
/// reserve 32 GiB of address space.
const STACK_SIZE: usize = 256 * 1024;

/// Ring rounds before the reduce/broadcast phases.
const RING_ROUNDS: u32 = 3;

fn ring_tag(round: u32) -> Tag {
    Tag::app(round)
}

const REDUCE_TAG: Tag = Tag::app(100);
const BCAST_TAG: Tag = Tag::app(101);

/// The synthetic SPMD rank: ring rounds, reduce to 0, broadcast back.
/// Returns a per-rank checksum contribution.
fn scale_rank(ctx: &mut Ctx<'_>) -> f64 {
    let n = ctx.nprocs();
    let me = ctx.rank();
    let mut acc = me as f64 + 1.0;
    for round in 0..RING_ROUNDS {
        ctx.compute(SimDuration::from_micros(50));
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        ctx.send(next, ring_tag(round), acc, 64);
        let v: f64 = ctx.recv_from(prev, ring_tag(round)).expect_clone();
        acc = 0.5 * acc + 0.5 * v + 1.0;
    }
    // Binomial-tree reduction: at stage `span`, ranks with that bit set
    // send their partial to the partner `span` below and drop out.
    let mut sum = acc;
    let mut span = 1;
    while span < n {
        if me & span != 0 {
            ctx.send(me - span, REDUCE_TAG, sum, 64);
            break;
        }
        if me + span < n {
            let v: f64 = ctx.recv_from(me + span, REDUCE_TAG).expect_clone();
            sum += v;
        }
        span <<= 1;
    }
    // Binomial-tree broadcast of the total: at stage `span`, holders
    // (ranks below `span`) feed the next block up.
    let mut total = sum;
    let mut span = 1;
    while span < n {
        if me < span {
            if me + span < n {
                ctx.send(me + span, BCAST_TAG, total, 64);
            }
        } else if me < 2 * span {
            total = ctx.recv_from(me - span, BCAST_TAG).expect_clone();
        }
        span <<= 1;
    }
    total + acc * 1e-3
}

/// One sweep cell: a machine size under one scheduler mode.
#[derive(Debug, Clone, Copy)]
struct Cell {
    clusters: usize,
    procs: usize,
    mode: SchedMode,
}

impl Cell {
    fn ranks(&self) -> usize {
        self.clusters * self.procs
    }

    /// Canonical record key, e.g. `c4x8/pool-w2` or `c4x8/legacy`.
    fn key(&self) -> String {
        format!("c{}x{}/{}", self.clusters, self.procs, self.mode_name())
    }

    fn mode_name(&self) -> String {
        match self.mode {
            SchedMode::LegacyThreads => "legacy".to_string(),
            SchedMode::WorkerPool { workers } => format!("pool-w{workers}"),
        }
    }

    /// The thread count the kernel must report for this cell.
    fn expected_threads(&self) -> usize {
        match self.mode {
            SchedMode::LegacyThreads => self.ranks(),
            SchedMode::WorkerPool { workers } => workers,
        }
    }
}

/// Enumerates the sweep's cells in canonical order: sizes ascending, pool
/// worker counts ascending, legacy last. The quick grid — what the
/// committed `BENCH_scale.json` baseline and CI run — keeps one pool cell
/// per probed size (still reaching the 4096-rank machine) plus one legacy
/// cell for the differential assert.
fn cells(quick: bool) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &(clusters, procs) in &SCALE_SIZES {
        let quick_size = matches!((clusters, procs), (4, 8) | (16, 32) | (64, 64));
        if quick && !quick_size {
            continue;
        }
        let workers: &[usize] = if quick { &[2] } else { &[1, 2, 8] };
        for &w in workers {
            cells.push(Cell {
                clusters,
                procs,
                mode: SchedMode::WorkerPool { workers: w },
            });
        }
        let legacy_in_quick = quick && (clusters, procs) == (4, 8);
        if (legacy_in_quick || !quick) && clusters * procs <= LEGACY_MAX_RANKS {
            cells.push(Cell {
                clusters,
                procs,
                mode: SchedMode::LegacyThreads,
            });
        }
    }
    cells
}

/// Runs the scale sweep.
///
/// # Errors
///
/// [`BenchError::Sim`] when a cell fails, reports an unexpected thread
/// count, or disagrees with another scheduler mode on the same machine
/// size (virtual time, message counts or checksum) — the N:M determinism
/// contract; plus artifact I/O failures.
pub fn run_scale(opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    let cells = cells(opts.quick);
    println!(
        "== scale: N:M scheduler cluster-count sweep (quick={}, jobs={}) ==",
        opts.quick, opts.jobs
    );
    println!(
        "   sizes 4x8 -> 64x64 ({} cells), synthetic ring+reduce+broadcast workload",
        cells.len()
    );
    let label = if opts.progress { Some("scale") } else { None };
    let t0 = Instant::now();
    let outs = engine::run_cells(&cells, opts.jobs, label, |_, cell| {
        let start = Instant::now();
        let machine = Machine::new(das_spec(cell.clusters, cell.procs, 10.0, 1.0))
            .with_sched_mode(cell.mode)
            .with_stack_size(STACK_SIZE);
        let result = machine.run(scale_rank).map_err(|e| e.to_string());
        (start.elapsed().as_secs_f64(), result)
    });
    let mut summary = BenchSummary::new("scale", "synthetic".to_string(), opts.quick, opts.jobs);
    summary.wall_s = t0.elapsed().as_secs_f64();
    println!(
        "{:>8} {:>6} {:>9} {:>12} {:>12} {:>10} {:>11}",
        "machine", "ranks", "mode", "virtual", "messages", "threads", "wall"
    );
    let mut rows = Vec::new();
    for (cell, (wall, result)) in cells.iter().zip(&outs) {
        let report = match result {
            Ok(r) => r,
            Err(e) => {
                return Err(BenchError::Sim(format!("cell {} failed: {e}", cell.key())));
            }
        };
        // The headline claim of the N:M scheme: thread count is set by the
        // flag, not the rank count. Only enforced where the worker pool
        // actually runs (non-x86_64 hosts silently fall back to legacy).
        if cfg!(target_arch = "x86_64") && report.sim_threads != cell.expected_threads() {
            return Err(BenchError::Sim(format!(
                "cell {}: expected {} simulator thread(s), kernel reports {}",
                cell.key(),
                cell.expected_threads(),
                report.sim_threads
            )));
        }
        let checksum: f64 = report.results.iter().sum();
        println!(
            "{:>8} {:>6} {:>9} {:>12} {:>12} {:>10} {:>10.2}s",
            format!("{}x{}", cell.clusters, cell.procs),
            cell.ranks(),
            cell.mode_name(),
            report.elapsed.to_string(),
            report.kernel_stats.messages,
            report.sim_threads,
            wall
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{},{:.6}",
            cell.clusters,
            cell.procs,
            cell.ranks(),
            cell.mode_name(),
            match cell.mode {
                SchedMode::LegacyThreads => cell.ranks(),
                SchedMode::WorkerPool { workers } => workers,
            },
            report.sim_threads,
            report.elapsed.as_secs_f64(),
            report.kernel_stats.messages,
            checksum
        ));
        summary.records.push(RunRecord {
            key: cell.key(),
            wall_s: *wall,
            virtual_s: report.elapsed.as_secs_f64(),
            checksum,
            kernel: report.kernel_stats,
            intra_msgs: report.net_stats.intra_msgs,
            intra_bytes: report.net_stats.intra_payload_bytes,
            inter_msgs: report.net_stats.inter_msgs,
            inter_bytes: report.net_stats.inter_payload_bytes,
            seed: None,
            profile: None,
            sim_threads: Some(report.sim_threads),
        });
    }
    // Differential gate: every scheduler mode that ran a given machine size
    // must agree bit-for-bit on everything virtual.
    for &(clusters, procs) in &SCALE_SIZES {
        let group: Vec<(&Cell, &RunRecord)> = cells
            .iter()
            .zip(&summary.records)
            .filter(|(c, _)| (c.clusters, c.procs) == (clusters, procs))
            .collect();
        let Some((first_cell, first)) = group.first() else {
            continue;
        };
        for (cell, rec) in &group[1..] {
            if rec.virtual_s != first.virtual_s
                || rec.checksum != first.checksum
                || rec.kernel != first.kernel
                || rec.inter_msgs != first.inter_msgs
                || rec.intra_msgs != first.intra_msgs
            {
                return Err(BenchError::Sim(format!(
                    "scheduler modes disagree on {clusters}x{procs}: {} ran {} s \
                     (checksum {}), {} ran {} s (checksum {})",
                    first_cell.mode_name(),
                    first.virtual_s,
                    first.checksum,
                    cell.mode_name(),
                    rec.virtual_s,
                    rec.checksum
                )));
            }
        }
    }
    println!("  all scheduler modes agree on every machine size");
    write_csv(
        &opts.out,
        "scale.csv",
        "clusters,procs,ranks,mode,workers,sim_threads,virtual_s,messages,checksum",
        &rows,
    )?;
    let path = opts.out.join("BENCH_scale.json");
    summary.write(&path)?;
    println!("  [wrote {}]", path.display());
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_reaches_the_largest_machine_and_keeps_a_legacy_cell() {
        let quick = cells(true);
        assert!(quick.iter().any(|c| c.ranks() == 4096));
        assert_eq!(
            quick
                .iter()
                .filter(|c| c.mode == SchedMode::LegacyThreads)
                .count(),
            1
        );
        // Quick cells are a subset of the full grid's keys.
        let full: Vec<String> = cells(false).iter().map(Cell::key).collect();
        for c in &quick {
            assert!(full.contains(&c.key()), "{} not in full grid", c.key());
        }
    }

    #[test]
    fn full_grid_never_spawns_legacy_above_the_ceiling() {
        for c in cells(false) {
            if c.mode == SchedMode::LegacyThreads {
                assert!(c.ranks() <= LEGACY_MAX_RANKS, "{}", c.key());
            }
        }
    }

    #[test]
    fn keys_are_unique_and_stable() {
        let all: Vec<String> = cells(false).iter().map(Cell::key).collect();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
        assert!(all.contains(&"c4x8/pool-w2".to_string()));
        assert!(all.contains(&"c4x8/legacy".to_string()));
    }

    #[test]
    fn smallest_cell_agrees_across_modes_end_to_end() {
        let run = |mode| {
            Machine::new(das_spec(2, 2, 10.0, 1.0))
                .with_sched_mode(mode)
                .with_stack_size(STACK_SIZE)
                .run(scale_rank)
                .expect("scale workload runs")
        };
        let legacy = run(SchedMode::LegacyThreads);
        let pool = run(SchedMode::WorkerPool { workers: 2 });
        assert_eq!(legacy.elapsed, pool.elapsed);
        assert_eq!(legacy.kernel_stats, pool.kernel_stats);
        let s1: f64 = legacy.results.iter().sum();
        let s2: f64 = pool.results.iter().sum();
        assert_eq!(s1.to_bits(), s2.to_bits());
    }
}
