//! The `selfperf` target: synthetic micro-benchmarks of the simulator's own
//! hot path, reported through the kernel's [`HotProfile`] counters.
//!
//! Unlike the paper targets (which measure the *simulated* machine), these
//! cells measure the *simulator*: how many scheduler handoffs, thread
//! parks, event-queue operations, mailbox scans and payload-clone bytes it
//! spends per simulated workload. Each cell is a small adversarial program
//! aimed at one hot path:
//!
//! | Cell | Stresses |
//! |---|---|
//! | `handoff/pingpong` | the kernel↔process rendezvous (one round trip per message) |
//! | `multicast/cloned` | fan-out receive with `expect_clone` (deep copies) |
//! | `multicast/shared` | the same fan-out with `expect_shared` (zero-copy) |
//! | `mailbox/tagged` | tag-indexed receive against a deeply parked mailbox |
//! | `events/fanout` | the event-queue heap under all-to-all bursts |
//!
//! Every counter except `park_wakes` is deterministic, so the committed
//! `BENCH_selfperf.json` baseline is compared exactly in CI (`numagap bench
//! --compare ... --virtual-only`); `park_wakes` depends on host timing (a
//! spin that loses the race parks) and is exempt, like wall clock.

use std::sync::Arc;
use std::time::Instant;

use numagap_net::{uniform_spec, NetStats};
use numagap_rt::Machine;
use numagap_sim::{HotProfile, KernelStats, SimDuration, Tag};

use crate::record::{BenchSummary, RunRecord};
use crate::targets::SweepOpts;
use crate::{engine, write_csv, BenchError};

/// Everything one selfperf cell measures.
#[derive(Debug, Clone)]
struct CellOut {
    elapsed: SimDuration,
    checksum: f64,
    kernel: KernelStats,
    net: NetStats,
    profile: HotProfile,
}

#[derive(Debug, Clone, Copy)]
enum Cell {
    Pingpong,
    Multicast { shared: bool },
    MailboxTagged,
    EventsFanout,
}

impl Cell {
    fn key(self) -> &'static str {
        match self {
            Cell::Pingpong => "handoff/pingpong",
            Cell::Multicast { shared: false } => "multicast/cloned",
            Cell::Multicast { shared: true } => "multicast/shared",
            Cell::MailboxTagged => "mailbox/tagged",
            Cell::EventsFanout => "events/fanout",
        }
    }
}

/// The canonical cell order (the committed baseline pins it).
const CELLS: [Cell; 5] = [
    Cell::Pingpong,
    Cell::Multicast { shared: false },
    Cell::Multicast { shared: true },
    Cell::MailboxTagged,
    Cell::EventsFanout,
];

fn run_cell(cell: Cell, quick: bool) -> Result<CellOut, String> {
    match cell {
        Cell::Pingpong => pingpong(if quick { 500 } else { 5000 }),
        Cell::Multicast { shared } => multicast(if quick { 24 } else { 240 }, shared),
        Cell::MailboxTagged => {
            mailbox_tagged(if quick { 64 } else { 192 }, if quick { 8 } else { 24 })
        }
        Cell::EventsFanout => events_fanout(if quick { 12 } else { 60 }),
    }
}

fn collect<T>(
    machine: &Machine,
    checksum_of: impl Fn(&[T]) -> f64,
    entry: impl Fn(&mut numagap_rt::Ctx<'_>) -> T + Send + Sync + 'static,
) -> Result<CellOut, String>
where
    T: Send + 'static,
{
    let report = machine.run(entry).map_err(|e| e.to_string())?;
    Ok(CellOut {
        elapsed: report.elapsed,
        checksum: checksum_of(&report.results),
        kernel: report.kernel_stats,
        net: report.net_stats,
        profile: report.profile,
    })
}

fn sum_u64(results: &[u64]) -> f64 {
    results.iter().fold(0.0, |a, &v| a + v as f64)
}

/// Two ranks exchange `rounds` 8-byte round trips: every simulated event is
/// a context switch, so this cell isolates the handoff cost per switch.
fn pingpong(rounds: u64) -> Result<CellOut, String> {
    let machine = Machine::new(uniform_spec(2));
    collect(&machine, sum_u64, move |ctx| {
        let mut acc = 0u64;
        if ctx.rank() == 0 {
            for i in 0..rounds {
                ctx.send(1, Tag::app(0), i, 8);
                let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(1));
                acc = acc.wrapping_add(v);
            }
        } else {
            for _ in 0..rounds {
                let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(0));
                ctx.send(0, Tag::app(1), v.wrapping_mul(3), 8);
                acc = acc.wrapping_add(v);
            }
        }
        acc
    })
}

/// Root fans a 64 KiB block to 7 peers, `reps` times, from one shared
/// payload. The cloned variant deep-copies at every receiver
/// (`expect_clone`); the shared variant takes an `Arc` handle
/// (`expect_shared`). Identical virtual time and traffic — the only
/// difference the profile may show is `bytes_cloned`.
fn multicast(reps: u64, shared: bool) -> Result<CellOut, String> {
    const BLOCK: usize = 64 * 1024;
    let machine = Machine::new(uniform_spec(8));
    collect(&machine, sum_u64, move |ctx| {
        let n = ctx.nprocs();
        let mut acc = 0u64;
        if ctx.rank() == 0 {
            for r in 0..reps {
                let block: Arc<Vec<u8>> = Arc::new(vec![(r & 0xff) as u8; BLOCK]);
                for dst in 1..n {
                    ctx.send_payload(dst, Tag::app(0), block.clone(), BLOCK as u64);
                }
                // Drain acks so mailbox depth stays constant per rep;
                // read by reference so the tiny acks don't show up in the
                // clone counter this cell exists to contrast.
                for _ in 1..n {
                    let m = ctx.recv_tag(Tag::app(1));
                    acc = acc.wrapping_add(*m.expect_ref::<u64>());
                }
            }
        } else {
            for _ in 0..reps {
                let m = ctx.recv_tag(Tag::app(0));
                let first = if shared {
                    m.expect_shared::<Vec<u8>>()[0]
                } else {
                    m.expect_clone::<Vec<u8>>()[0]
                };
                ctx.send(0, Tag::app(1), u64::from(first) + 1, 8);
                acc = acc.wrapping_add(u64::from(first));
            }
        }
        acc
    })
}

/// The sender bursts `ntags` differently-tagged messages; the receiver
/// drains them in *reverse* tag order, so all but one are parked when their
/// receive posts. A linear-scan mailbox pays O(depth) per receive here; the
/// tag index pays O(log depth).
fn mailbox_tagged(ntags: u32, rounds: u64) -> Result<CellOut, String> {
    let machine = Machine::new(uniform_spec(2));
    collect(&machine, sum_u64, move |ctx| {
        let mut acc = 0u64;
        for round in 0..rounds {
            if ctx.rank() == 0 {
                for t in 0..ntags {
                    ctx.send(1, Tag::app(t), u64::from(t) + round, 16);
                }
                let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(ntags));
                acc = acc.wrapping_add(v);
            } else {
                for t in (0..ntags).rev() {
                    let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(t));
                    acc = acc.wrapping_add(v);
                }
                ctx.send(0, Tag::app(ntags), round, 8);
            }
        }
        acc
    })
}

/// All-to-all bursts on 8 ranks: every round pushes `n*(n-1)` concurrent
/// deliveries through the event queue, exercising the heap (not just the
/// front slot) and the deliver-to-blocked fast path.
fn events_fanout(rounds: u64) -> Result<CellOut, String> {
    let machine = Machine::new(uniform_spec(8));
    collect(&machine, sum_u64, move |ctx| {
        let (me, n) = (ctx.rank(), ctx.nprocs());
        let mut acc = 0u64;
        for round in 0..rounds {
            for d in 0..n {
                if d != me {
                    ctx.send(d, Tag::app(2), (round << 8) | me as u64, 128);
                }
            }
            for _ in 0..n - 1 {
                let (_, v): (usize, u64) = ctx.recv_typed(Tag::app(2));
                acc = acc.wrapping_add(v);
                ctx.compute(SimDuration::from_micros(5));
            }
        }
        acc
    })
}

/// Runs the selfperf target: every cell through the worker pool, stdout
/// profile table, `selfperf.csv`, and `BENCH_selfperf.json`.
///
/// The summary's `scale` is always `"synthetic"` — cells are simulator
/// micro-benchmarks and do not depend on the application problem size; only
/// `--quick` changes the grid.
///
/// # Errors
///
/// Simulator failures in any cell and artifact I/O.
pub fn run_selfperf(opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    println!(
        "== selfperf: simulator hot-path profile (quick={} jobs={}) ==",
        opts.quick, opts.jobs
    );
    let t0 = Instant::now();
    let label = if opts.progress {
        Some("selfperf")
    } else {
        None
    };
    let outs = engine::run_cells(&CELLS, opts.jobs, label, |_, &cell| {
        let start = Instant::now();
        let out = run_cell(cell, opts.quick);
        (out, start.elapsed().as_secs_f64())
    });
    let mut summary = BenchSummary::new("selfperf", "synthetic".to_string(), opts.quick, opts.jobs);
    summary.wall_s = t0.elapsed().as_secs_f64();

    println!(
        "\n{:<18} {:>9} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9} {:>11}",
        "cell",
        "switches",
        "wakes",
        "wakes/sw",
        "heap_push",
        "front_pop",
        "mbox_scan",
        "mbox_idx",
        "clone_bytes"
    );
    let mut rows = Vec::new();
    for (cell, (out, wall)) in CELLS.iter().zip(&outs) {
        let out = match out {
            Ok(out) => out,
            Err(e) => return Err(BenchError::Sim(format!("{} failed: {e}", cell.key()))),
        };
        let p = out.profile;
        // The pre-overhaul channel handoff woke two threads per scheduler
        // transition (the process for its grant, the kernel for the next
        // request) — `switches + requests` wakes in total. The parked-slot
        // handoff only pays a wake when the spin loses the race, so
        // `park_wakes / (switches + requests)` is the measured improvement.
        let legacy_wakes = p.switches + p.requests;
        let per_switch = p.park_wakes as f64 / (p.switches.max(1)) as f64;
        println!(
            "{:<18} {:>9} {:>9} {:>10.4} {:>10} {:>10} {:>9} {:>9} {:>11}",
            cell.key(),
            p.switches,
            p.park_wakes,
            per_switch,
            p.heap_pushes,
            p.front_pops,
            p.mailbox_scanned,
            p.mailbox_indexed,
            p.bytes_cloned
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            cell.key(),
            out.elapsed.as_secs_f64(),
            p.switches,
            p.requests,
            p.park_wakes,
            legacy_wakes,
            p.heap_pushes,
            p.heap_pops,
            p.front_pops,
            p.queue_peak,
            p.mailbox_scanned,
            p.mailbox_indexed,
            p.bytes_cloned
        ));
        summary.records.push(RunRecord {
            key: cell.key().to_string(),
            wall_s: *wall,
            virtual_s: out.elapsed.as_secs_f64(),
            checksum: out.checksum,
            kernel: out.kernel,
            intra_msgs: out.net.intra_msgs,
            intra_bytes: out.net.intra_payload_bytes,
            inter_msgs: out.net.inter_msgs,
            inter_bytes: out.net.inter_payload_bytes,
            seed: None,
            profile: Some(p),
            sim_threads: None,
        });
    }

    // Headline numbers for the two claims this target exists to track.
    let find = |key: &str| {
        summary
            .records
            .iter()
            .find(|r| r.key == key)
            .and_then(|r| r.profile)
            .expect("cell recorded")
    };
    let pp = find("handoff/pingpong");
    let legacy = pp.switches + pp.requests;
    println!(
        "\n  pingpong wakes: {} parked over {} legacy channel wakes \
         ({:.1}x fewer)",
        pp.park_wakes,
        legacy,
        legacy as f64 / (pp.park_wakes.max(1)) as f64
    );
    let (mc, ms) = (find("multicast/cloned"), find("multicast/shared"));
    println!(
        "  multicast bytes cloned: {} (expect_clone) vs {} (expect_shared)",
        mc.bytes_cloned, ms.bytes_cloned
    );

    write_csv(
        &opts.out,
        "selfperf.csv",
        "cell,virtual_s,switches,requests,park_wakes,legacy_wakes,heap_pushes,\
         heap_pops,front_pops,queue_peak,mailbox_scanned,mailbox_indexed,bytes_cloned",
        &rows,
    )?;
    let path = opts.out.join("BENCH_selfperf.json");
    summary.write(&path)?;
    println!("  [wrote {}]", path.display());
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{compare, CompareOpts};
    use numagap_apps::Scale;

    fn opts(dir: &std::path::Path) -> SweepOpts {
        SweepOpts {
            scale: Scale::Small,
            quick: true,
            jobs: 2,
            out: dir.to_path_buf(),
            progress: false,
            topology: None,
        }
    }

    #[test]
    fn selfperf_is_deterministic_and_profiles_every_cell() {
        let dir = std::env::temp_dir().join("numagap-selfperf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = run_selfperf(&opts(&dir)).unwrap();
        let b = run_selfperf(&opts(&dir)).unwrap();
        assert_eq!(a.records.len(), CELLS.len());
        for r in &a.records {
            let p = r.profile.expect("selfperf records carry a profile");
            assert!(p.switches > 0, "{}: no switches recorded", r.key);
            assert!(r.virtual_s > 0.0, "{}: no virtual time", r.key);
        }
        // Back-to-back runs must agree on every deterministic field
        // (park_wakes and wall clock are exempt by design).
        let rep = compare(
            &a,
            &b,
            &CompareOpts {
                wall_clock: false,
                ..CompareOpts::default()
            },
        );
        assert!(rep.is_clean(), "{:?}", rep.findings);
        // The artifact round-trips through the JSON schema with profiles.
        let loaded = BenchSummary::load(&dir.join("BENCH_selfperf.json")).unwrap();
        assert_eq!(loaded, b);
    }

    #[test]
    fn shared_multicast_clones_nothing_and_matches_cloned_timing() {
        let cloned = run_cell(Cell::Multicast { shared: false }, true).unwrap();
        let shared = run_cell(Cell::Multicast { shared: true }, true).unwrap();
        // Zero-copy changes only the clone counter: virtual time, events and
        // results are bit-identical between the two receive styles.
        assert_eq!(cloned.elapsed, shared.elapsed);
        assert_eq!(cloned.checksum, shared.checksum);
        assert_eq!(cloned.kernel, shared.kernel);
        assert_eq!(shared.profile.bytes_cloned, 0);
        // 7 receivers x 24 reps x 64 KiB deep-copied on the clone path.
        assert_eq!(cloned.profile.bytes_cloned, 7 * 24 * 64 * 1024);
    }

    #[test]
    fn tagged_mailbox_scan_work_is_constant_per_take() {
        let out = run_cell(Cell::MailboxTagged, true).unwrap();
        let p = out.profile;
        // Reverse-order draining keeps ~64 messages parked, yet every
        // indexed take examines only its own tag's queue front — scan work
        // per take stays O(1). A linear mailbox would have examined ~half
        // the parked depth (~32 entries) per receive here.
        assert!(p.mailbox_indexed >= 500, "takes: {}", p.mailbox_indexed);
        assert!(
            p.mailbox_scanned <= 2 * p.mailbox_indexed,
            "scan work {} not O(1) per take ({} takes)",
            p.mailbox_scanned,
            p.mailbox_indexed
        );
    }
}
