//! The parallel experiment engine: a scoped worker pool that fans
//! independent, deterministic simulation cells across OS threads.
//!
//! Every experiment in this repository is a set of *independent* simulation
//! cells — one `(app, variant, latency, bandwidth, seed)` point each — and
//! every cell is bit-for-bit deterministic on its own (the kernel runs one
//! simulated process at a time; host scheduling cannot leak in). The engine
//! exploits exactly that: workers pull cells from an atomic work index, and
//! results are written back into a slot per cell, so the collected output is
//! in *cell order* regardless of completion order. A `--jobs 8` sweep
//! therefore produces byte-identical CSV and JSON (modulo wall-clock
//! fields) to a `--jobs 1` sweep; `tests/bench_engine.rs` pins that.
//!
//! Worker count comes from, in priority order: an explicit `jobs` argument
//! (the CLI's `--jobs`), the `REPRO_JOBS` environment variable, and the
//! host's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Default worker count: `REPRO_JOBS` when set to a positive integer,
/// otherwise the host's available parallelism (1 when unknown).
pub fn jobs_from_env() -> usize {
    match std::env::var("REPRO_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Runs `f` over every cell on up to `jobs` worker threads and returns the
/// results **in cell order**, not completion order.
///
/// Cells are claimed through a single atomic counter (a shared work queue —
/// cheap dynamic load balancing, since a 300 ms-latency cell simulates far
/// longer than a 0.5 ms one). When `progress` carries a label, a one-line
/// progress counter is maintained on stderr.
///
/// # Panics
///
/// A panic inside `f` (e.g. a simulator abort surfaced through
/// [`crate::must_run`]) is re-raised on the calling thread after the
/// remaining workers drain.
pub fn run_cells<C, R, F>(cells: &[C], jobs: usize, progress: Option<&str>, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, &C) -> R + Sync,
{
    let total = cells.len();
    let jobs = jobs.max(1).min(total.max(1));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(total, || None);
    thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let (next, done, f) = (&next, &done, &f);
                s.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        out.push((i, f(i, &cells[i])));
                        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(label) = progress {
                            // One atomic eprint per cell; `\r` keeps it a
                            // single live line on a terminal.
                            eprint!("\r  [{label}: {d}/{total} cells]");
                        }
                    }
                    out
                })
            })
            .collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        slots[i] = Some(r);
                    }
                }
                // Keep joining so every worker finishes before unwinding.
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });
    if progress.is_some() && total > 0 {
        eprintln!();
    }
    slots
        .into_iter()
        .map(|r| r.expect("every claimed cell stores a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<usize> = (0..97).collect();
        for jobs in [1, 2, 8, 200] {
            let out = run_cells(&cells, jobs, None, |i, &c| {
                assert_eq!(i, c);
                // Stagger completion so completion order differs from cell
                // order whenever jobs > 1.
                if c % 3 == 0 {
                    thread::sleep(std::time::Duration::from_micros(200));
                }
                c * 10
            });
            assert_eq!(out, cells.iter().map(|c| c * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_cell_sets() {
        let out: Vec<u32> = run_cells(&[], 8, None, |_, c: &u32| *c);
        assert!(out.is_empty());
        let out = run_cells(&[7u32], 8, None, |_, c| c + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let cells: Vec<u32> = (0..64).collect();
        let _ = run_cells(&cells, 5, None, |_, _| hits.fetch_add(1, Ordering::Relaxed));
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn worker_panic_propagates() {
        let cells: Vec<u32> = (0..8).collect();
        let res = std::panic::catch_unwind(|| {
            run_cells(&cells, 2, None, |_, &c| {
                assert!(c != 5, "cell 5 exploded");
                c
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn env_default_is_positive() {
        assert!(jobs_from_env() >= 1);
    }
}
