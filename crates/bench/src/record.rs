//! Machine-readable benchmark records: the versioned `BENCH_<target>.json`
//! schema and the regression `compare` mode.
//!
//! Every experiment cell the engine runs is summarized as a [`RunRecord`]:
//! host wall-clock time, virtual (simulated) time, the run checksum, the
//! kernel's whole-run accounting ([`KernelStats`]) and per-layer traffic.
//! A sweep collects its records into a [`BenchSummary`] written next to the
//! CSV artifacts — this is what gives the repository a queryable perf
//! trajectory instead of throwaway stdout.
//!
//! Determinism contract: for a fixed target, scale and grid, everything in
//! a record except the `wall_s` fields is bit-for-bit reproducible across
//! runs, machines and `--jobs` settings. [`compare`] exploits that split:
//! any drift in virtual time, checksums or kernel counters is a
//! *determinism* finding, while wall-clock changes are judged against a
//! relative threshold (they legitimately vary run to run).

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use numagap_apps::AppRun;
use numagap_sim::{HotProfile, KernelStats};

use crate::json::{self, Json};

/// Version stamped into every `BENCH_*.json`; bump on schema changes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Everything recorded from one experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Canonical cell key, e.g. `Water/optimized/lat3.3/bw0.3` — unique
    /// within a target and stable across runs; `compare` matches on it.
    pub key: String,
    /// Host wall-clock seconds spent simulating this cell.
    pub wall_s: f64,
    /// Virtual makespan in seconds (deterministic).
    pub virtual_s: f64,
    /// Run checksum (deterministic; must match the serial reference).
    pub checksum: f64,
    /// Whole-run kernel accounting (deterministic).
    pub kernel: KernelStats,
    /// Intra-cluster messages.
    pub intra_msgs: u64,
    /// Intra-cluster payload bytes.
    pub intra_bytes: u64,
    /// Inter-cluster messages.
    pub inter_msgs: u64,
    /// Inter-cluster payload bytes.
    pub inter_bytes: u64,
    /// Fault-plan seed the cell ran under, if any.
    pub seed: Option<u64>,
    /// Kernel hot-path self-profile; recorded only by the `selfperf` target
    /// (`None` keeps the figure/table artifacts byte-identical to their
    /// pre-profile baselines). All fields but `park_wakes` are deterministic
    /// and compared exactly; `park_wakes` varies with host timing like
    /// `wall_s`.
    pub profile: Option<HotProfile>,
    /// Peak simulator thread count the cell ran with (deterministic for a
    /// fixed scheduler mode: the pool's worker count, or the rank count in
    /// legacy 1:1 mode). Recorded only by the `scale` target; `None` keeps
    /// the other targets' artifacts byte-identical to their baselines.
    pub sim_threads: Option<usize>,
}

impl RunRecord {
    /// Builds a record from a finished application run.
    pub fn from_run(key: String, wall_s: f64, run: &AppRun) -> Self {
        RunRecord {
            key,
            wall_s,
            virtual_s: run.elapsed.as_secs_f64(),
            checksum: run.checksum,
            kernel: run.kernel,
            intra_msgs: run.net.intra_msgs,
            intra_bytes: run.net.intra_payload_bytes,
            inter_msgs: run.net.inter_msgs,
            inter_bytes: run.net.inter_payload_bytes,
            seed: run.seed,
            profile: None,
            sim_threads: None,
        }
    }
}

/// `profile` with every host-timing-dependent field (`park_wakes`) zeroed:
/// the subset [`compare`] may check exactly.
fn deterministic_profile(p: &HotProfile) -> HotProfile {
    HotProfile {
        park_wakes: 0,
        ..*p
    }
}

/// One target's sweep, summarized for the `BENCH_<target>.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] when written by this build).
    pub schema: u64,
    /// Target name (`fig3`, `fig4`, `table1`, ...).
    pub target: String,
    /// Problem scale the sweep ran at (`small` | `medium` | `paper`).
    pub scale: String,
    /// Whether the coarse `REPRO_QUICK` grid was used.
    pub quick: bool,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Whole-sweep host wall-clock seconds.
    pub wall_s: f64,
    /// Per-cell records, in canonical cell order.
    pub records: Vec<RunRecord>,
}

impl BenchSummary {
    /// Creates an empty summary for a target.
    pub fn new(target: &str, scale: String, quick: bool, jobs: usize) -> Self {
        BenchSummary {
            schema: BENCH_SCHEMA_VERSION,
            target: target.to_string(),
            scale,
            quick,
            jobs,
            wall_s: 0.0,
            records: Vec::new(),
        }
    }

    /// Serializes to pretty-enough JSON (one record per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": {},\n  \"target\": \"{}\",\n  \"scale\": \"{}\",\n  \
             \"quick\": {},\n  \"jobs\": {},\n  \"wall_s\": {},\n  \"records\": [",
            self.schema,
            json::escape(&self.target),
            json::escape(&self.scale),
            self.quick,
            self.jobs,
            self.wall_s,
        );
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            let seed = match r.seed {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            };
            // The profile block is additive: records without one serialize
            // exactly as they did before the field existed, so committed
            // figure/table baselines remain byte-identical.
            let profile = match &r.profile {
                None => String::new(),
                Some(p) => format!(
                    ", \"switches\": {}, \"requests\": {}, \"park_wakes\": {}, \
                     \"heap_pushes\": {}, \"heap_pops\": {}, \"front_pops\": {}, \
                     \"queue_peak\": {}, \"mailbox_scanned\": {}, \"mailbox_indexed\": {}, \
                     \"mailbox_fast\": {}, \"bytes_cloned\": {}",
                    p.switches,
                    p.requests,
                    p.park_wakes,
                    p.heap_pushes,
                    p.heap_pops,
                    p.front_pops,
                    p.queue_peak,
                    p.mailbox_scanned,
                    p.mailbox_indexed,
                    p.mailbox_fast,
                    p.bytes_cloned,
                ),
            };
            // Also additive, for the same baseline-stability reason.
            let sim_threads = match r.sim_threads {
                None => String::new(),
                Some(n) => format!(", \"sim_threads\": {n}"),
            };
            let _ = write!(
                out,
                "\n    {{\"key\": \"{}\", \"wall_s\": {}, \"virtual_s\": {}, \
                 \"checksum\": {}, \"events\": {}, \"messages\": {}, \"bytes\": {}, \
                 \"intra_msgs\": {}, \"intra_bytes\": {}, \"inter_msgs\": {}, \
                 \"inter_bytes\": {}, \"faults_dropped\": {}, \"faults_duplicated\": {}, \
                 \"faults_delayed\": {}, \"seed\": {}{}{}}}{}",
                json::escape(&r.key),
                r.wall_s,
                r.virtual_s,
                r.checksum,
                r.kernel.events,
                r.kernel.messages,
                r.kernel.bytes,
                r.intra_msgs,
                r.intra_bytes,
                r.inter_msgs,
                r.inter_bytes,
                r.kernel.faults_dropped,
                r.kernel.faults_duplicated,
                r.kernel.faults_delayed,
                seed,
                profile,
                sim_threads,
                sep,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a summary from JSON text.
    ///
    /// # Errors
    ///
    /// Invalid JSON, a missing/mistyped field, or an unknown schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = field_u64(&doc, "schema")?;
        if schema != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported BENCH schema version {schema} (this build reads \
                 {BENCH_SCHEMA_VERSION})"
            ));
        }
        let mut records = Vec::new();
        for (i, r) in doc
            .get("records")
            .and_then(Json::as_array)
            .ok_or("missing 'records' array")?
            .iter()
            .enumerate()
        {
            records.push(record_from_json(r).map_err(|e| format!("record {i}: {e}"))?);
        }
        Ok(BenchSummary {
            schema,
            target: field_str(&doc, "target")?,
            scale: field_str(&doc, "scale")?,
            quick: doc
                .get("quick")
                .and_then(Json::as_bool)
                .ok_or("missing 'quick'")?,
            jobs: field_u64(&doc, "jobs")? as usize,
            wall_s: field_f64(&doc, "wall_s")?,
            records,
        })
    }

    /// Writes the JSON artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Loads a summary from a JSON file.
    ///
    /// # Errors
    ///
    /// I/O failures and every [`BenchSummary::from_json`] failure, with the
    /// path named in the message.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn field_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric '{key}'"))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn record_from_json(r: &Json) -> Result<RunRecord, String> {
    Ok(RunRecord {
        key: field_str(r, "key")?,
        wall_s: field_f64(r, "wall_s")?,
        virtual_s: field_f64(r, "virtual_s")?,
        checksum: field_f64(r, "checksum")?,
        kernel: KernelStats {
            events: field_u64(r, "events")?,
            messages: field_u64(r, "messages")?,
            bytes: field_u64(r, "bytes")?,
            faults_dropped: field_u64(r, "faults_dropped")?,
            faults_duplicated: field_u64(r, "faults_duplicated")?,
            faults_delayed: field_u64(r, "faults_delayed")?,
        },
        intra_msgs: field_u64(r, "intra_msgs")?,
        intra_bytes: field_u64(r, "intra_bytes")?,
        inter_msgs: field_u64(r, "inter_msgs")?,
        inter_bytes: field_u64(r, "inter_bytes")?,
        seed: match r.get("seed") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("non-integer 'seed'")?),
        },
        // Pre-profile records simply lack these keys.
        profile: match r.get("switches") {
            None => None,
            Some(_) => Some(HotProfile {
                switches: field_u64(r, "switches")?,
                requests: field_u64(r, "requests")?,
                park_wakes: field_u64(r, "park_wakes")?,
                heap_pushes: field_u64(r, "heap_pushes")?,
                heap_pops: field_u64(r, "heap_pops")?,
                front_pops: field_u64(r, "front_pops")?,
                queue_peak: field_u64(r, "queue_peak")?,
                mailbox_scanned: field_u64(r, "mailbox_scanned")?,
                mailbox_indexed: field_u64(r, "mailbox_indexed")?,
                mailbox_fast: field_u64(r, "mailbox_fast")?,
                bytes_cloned: field_u64(r, "bytes_cloned")?,
            }),
        },
        sim_threads: match r.get("sim_threads") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or("non-integer 'sim_threads'")? as usize),
        },
    })
}

/// Options for [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct CompareOpts {
    /// A cell (or the whole sweep) whose new wall clock exceeds
    /// `old * threshold` is flagged as a wall-clock regression.
    pub threshold: f64,
    /// When false, skip wall-clock checks entirely — the mode CI uses
    /// against a baseline recorded on different hardware.
    pub wall_clock: bool,
}

impl Default for CompareOpts {
    fn default() -> Self {
        CompareOpts {
            threshold: 1.5,
            wall_clock: true,
        }
    }
}

/// The outcome of diffing two summaries.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Regressions and drift; non-empty means the comparison failed.
    pub findings: Vec<String>,
    /// Informational lines (totals, improvements).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// True when no finding was recorded.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Diffs `new` against `old`.
///
/// Deterministic fields (virtual time, checksum, kernel counters, traffic,
/// cell membership) must match exactly — any difference is a finding, since
/// for a fixed target/scale/grid they cannot legitimately change without a
/// code change. Wall-clock fields are compared per cell (above a 10 ms noise
/// floor) and in aggregate, against `opts.threshold`.
pub fn compare(old: &BenchSummary, new: &BenchSummary, opts: &CompareOpts) -> CompareReport {
    let mut rep = CompareReport::default();
    if old.target != new.target {
        rep.findings.push(format!(
            "target mismatch: baseline is '{}', candidate is '{}'",
            old.target, new.target
        ));
        return rep;
    }
    if old.scale != new.scale || old.quick != new.quick {
        rep.findings.push(format!(
            "grid mismatch: baseline scale={}/quick={}, candidate scale={}/quick={} — \
             virtual times are not comparable",
            old.scale, old.quick, new.scale, new.quick
        ));
        return rep;
    }
    let mut matched = 0usize;
    for o in &old.records {
        let Some(n) = new.records.iter().find(|n| n.key == o.key) else {
            rep.findings
                .push(format!("cell '{}' missing from candidate", o.key));
            continue;
        };
        matched += 1;
        if n.virtual_s != o.virtual_s {
            rep.findings.push(format!(
                "cell '{}': virtual time drifted {} -> {} s (determinism violation \
                 or perf-model change)",
                o.key, o.virtual_s, n.virtual_s
            ));
        }
        if n.checksum != o.checksum {
            rep.findings.push(format!(
                "cell '{}': checksum drifted {} -> {}",
                o.key, o.checksum, n.checksum
            ));
        }
        if n.kernel != o.kernel
            || n.intra_msgs != o.intra_msgs
            || n.inter_msgs != o.inter_msgs
            || n.intra_bytes != o.intra_bytes
            || n.inter_bytes != o.inter_bytes
        {
            rep.findings.push(format!(
                "cell '{}': kernel/traffic counters drifted (events {} -> {}, \
                 messages {} -> {}, inter_msgs {} -> {})",
                o.key,
                o.kernel.events,
                n.kernel.events,
                o.kernel.messages,
                n.kernel.messages,
                o.inter_msgs,
                n.inter_msgs
            ));
        }
        // Profile counters: deterministic except `park_wakes`, which is
        // host-timing-dependent and judged like wall clock (not at all in
        // exact mode). A baseline without a profile ignores the candidate's.
        if let (Some(po), Some(pn)) = (&o.profile, &n.profile) {
            if deterministic_profile(pn) != deterministic_profile(po) {
                rep.findings.push(format!(
                    "cell '{}': hot-path profile drifted (switches {} -> {}, \
                     heap_pushes {} -> {}, mailbox_scanned {} -> {}, \
                     bytes_cloned {} -> {})",
                    o.key,
                    po.switches,
                    pn.switches,
                    po.heap_pushes,
                    pn.heap_pushes,
                    po.mailbox_scanned,
                    pn.mailbox_scanned,
                    po.bytes_cloned,
                    pn.bytes_cloned
                ));
            }
        }
        // Thread-count ceiling: deterministic for a fixed scheduler mode.
        // A baseline without the field ignores the candidate's.
        if let (Some(to), Some(tn)) = (o.sim_threads, n.sim_threads) {
            if to != tn {
                rep.findings.push(format!(
                    "cell '{}': simulator thread count drifted {to} -> {tn}",
                    o.key
                ));
            }
        }
        // Wall clock: only cells big enough to time meaningfully.
        if opts.wall_clock && o.wall_s >= 0.010 && n.wall_s > o.wall_s * opts.threshold {
            rep.findings.push(format!(
                "cell '{}': wall clock regressed {:.3} -> {:.3} s ({:.2}x, threshold {:.2}x)",
                o.key,
                o.wall_s,
                n.wall_s,
                n.wall_s / o.wall_s,
                opts.threshold
            ));
        }
    }
    for n in &new.records {
        if !old.records.iter().any(|o| o.key == n.key) {
            rep.notes
                .push(format!("cell '{}' is new (not in baseline)", n.key));
        }
    }
    if opts.wall_clock && old.wall_s > 0.0 {
        let ratio = new.wall_s / old.wall_s;
        if new.wall_s > old.wall_s * opts.threshold {
            rep.findings.push(format!(
                "sweep wall clock regressed {:.3} -> {:.3} s ({ratio:.2}x, threshold {:.2}x)",
                old.wall_s, new.wall_s, opts.threshold
            ));
        } else {
            rep.notes.push(format!(
                "sweep wall clock {:.3} -> {:.3} s ({ratio:.2}x, jobs {} -> {})",
                old.wall_s, new.wall_s, old.jobs, new.jobs
            ));
        }
    }
    rep.notes.push(format!(
        "{matched} cell(s) compared, {} finding(s)",
        rep.findings.len()
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: &str, wall: f64, virt: f64) -> RunRecord {
        RunRecord {
            key: key.to_string(),
            wall_s: wall,
            virtual_s: virt,
            checksum: 42.5,
            kernel: KernelStats {
                events: 100,
                messages: 40,
                bytes: 4096,
                ..KernelStats::default()
            },
            intra_msgs: 30,
            intra_bytes: 3000,
            inter_msgs: 10,
            inter_bytes: 1096,
            seed: None,
            profile: None,
            sim_threads: None,
        }
    }

    fn profiled(key: &str) -> RunRecord {
        RunRecord {
            profile: Some(HotProfile {
                switches: 500,
                requests: 510,
                park_wakes: 7,
                heap_pushes: 120,
                heap_pops: 120,
                front_pops: 380,
                queue_peak: 9,
                mailbox_scanned: 44,
                mailbox_indexed: 33,
                mailbox_fast: 200,
                bytes_cloned: 8192,
            }),
            ..record(key, 0.1, 2.0)
        }
    }

    fn summary(records: Vec<RunRecord>) -> BenchSummary {
        BenchSummary {
            schema: BENCH_SCHEMA_VERSION,
            target: "fig3".into(),
            scale: "small".into(),
            quick: true,
            jobs: 4,
            wall_s: 1.0,
            records,
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut s = summary(vec![record("a/b/c", 0.125, 3.0625), record("d", 0.5, 7.5)]);
        s.records[1].seed = Some(99);
        s.records[1].kernel.faults_dropped = 3;
        let parsed = BenchSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn profile_round_trips_and_absence_keeps_old_shape() {
        let s = summary(vec![profiled("p"), record("q", 0.1, 2.0)]);
        let text = s.to_json();
        assert!(text.contains("\"bytes_cloned\": 8192"), "{text}");
        let parsed = BenchSummary::from_json(&text).unwrap();
        assert_eq!(parsed, s);
        // A record without a profile serializes without any profile keys, so
        // pre-profile baselines stay byte-identical.
        let plain = summary(vec![record("q", 0.1, 2.0)]).to_json();
        assert!(!plain.contains("switches"), "{plain}");
    }

    #[test]
    fn profile_drift_is_a_finding_but_park_wakes_is_exempt() {
        let old = summary(vec![profiled("p")]);
        // Host-timing noise: park_wakes may move freely.
        let mut new = old.clone();
        new.records[0].profile.as_mut().unwrap().park_wakes = 9999;
        let rep = compare(&old, &new, &CompareOpts::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
        // A deterministic counter moving is a finding.
        new.records[0].profile.as_mut().unwrap().mailbox_scanned += 1;
        let rep = compare(&old, &new, &CompareOpts::default());
        assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        assert!(rep.findings[0].contains("hot-path profile drifted"));
        // A baseline recorded before profiles existed ignores them.
        let mut unprofiled = old.clone();
        unprofiled.records[0].profile = None;
        let rep = compare(&unprofiled, &new, &CompareOpts::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
    }

    #[test]
    fn sim_threads_round_trips_and_drift_is_a_finding() {
        let mut s = summary(vec![record("c4x8/pool-w2", 0.1, 2.0)]);
        s.records[0].sim_threads = Some(2);
        let text = s.to_json();
        assert!(text.contains("\"sim_threads\": 2"), "{text}");
        let parsed = BenchSummary::from_json(&text).unwrap();
        assert_eq!(parsed, s);
        // Absent in the record -> absent from the JSON (baseline stability).
        let plain = summary(vec![record("q", 0.1, 2.0)]).to_json();
        assert!(!plain.contains("sim_threads"), "{plain}");
        // A candidate whose ceiling moved against a recorded baseline fails.
        let mut new = s.clone();
        new.records[0].sim_threads = Some(32);
        let rep = compare(&s, &new, &CompareOpts::default());
        assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        assert!(rep.findings[0].contains("thread count drifted"));
        // A baseline recorded before the field existed ignores it.
        let mut old = s.clone();
        old.records[0].sim_threads = None;
        let rep = compare(&old, &new, &CompareOpts::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut s = summary(vec![]);
        s.schema = 999;
        let err = BenchSummary::from_json(&s.to_json()).unwrap_err();
        assert!(err.contains("schema version 999"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(BenchSummary::from_json("{").is_err());
        assert!(BenchSummary::from_json("{\"schema\": 1}").is_err());
    }

    #[test]
    fn identical_summaries_compare_clean() {
        let s = summary(vec![record("a", 0.1, 2.0)]);
        let rep = compare(&s, &s.clone(), &CompareOpts::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
    }

    #[test]
    fn virtual_time_drift_is_a_finding() {
        let old = summary(vec![record("a", 0.1, 2.0)]);
        let mut new = old.clone();
        new.records[0].virtual_s = 2.5;
        let rep = compare(&old, &new, &CompareOpts::default());
        assert_eq!(rep.findings.len(), 1);
        assert!(rep.findings[0].contains("virtual time drifted"));
    }

    #[test]
    fn wall_clock_regression_beyond_threshold_is_flagged() {
        let old = summary(vec![record("a", 0.1, 2.0)]);
        let mut new = old.clone();
        new.records[0].wall_s = 0.2; // 2x > 1.5x threshold
        new.wall_s = 2.0;
        let rep = compare(&old, &new, &CompareOpts::default());
        assert_eq!(rep.findings.len(), 2, "{:?}", rep.findings);
        assert!(rep.findings.iter().all(|f| f.contains("wall clock")));
        // Same diff in virtual-only mode is clean: wall clock is hardware-
        // dependent and CI compares across machines.
        let rep = compare(
            &old,
            &new,
            &CompareOpts {
                wall_clock: false,
                ..CompareOpts::default()
            },
        );
        assert!(rep.is_clean(), "{:?}", rep.findings);
    }

    #[test]
    fn tiny_cells_are_exempt_from_wall_noise() {
        let old = summary(vec![record("a", 0.001, 2.0)]);
        let mut new = old.clone();
        new.records[0].wall_s = 0.009; // 9x, but below the 10 ms floor
        new.wall_s = 1.2;
        let rep = compare(&old, &new, &CompareOpts::default());
        assert!(rep.is_clean(), "{:?}", rep.findings);
    }

    #[test]
    fn membership_changes_are_findings_or_notes() {
        let old = summary(vec![record("a", 0.1, 2.0), record("b", 0.1, 3.0)]);
        let new = summary(vec![record("a", 0.1, 2.0), record("c", 0.1, 4.0)]);
        let rep = compare(&old, &new, &CompareOpts::default());
        assert!(rep.findings.iter().any(|f| f.contains("'b' missing")));
        assert!(rep.notes.iter().any(|n| n.contains("'c' is new")));
    }

    #[test]
    fn checksum_drift_is_a_finding() {
        let old = summary(vec![record("a", 0.1, 2.0)]);
        let mut new = old.clone();
        new.records[0].checksum += 1.0;
        new.records[0].kernel.events += 1;
        let rep = compare(&old, &new, &CompareOpts::default());
        assert_eq!(rep.findings.len(), 2);
    }

    #[test]
    fn grid_mismatch_refuses_to_compare() {
        let old = summary(vec![record("a", 0.1, 2.0)]);
        let mut new = old.clone();
        new.quick = false;
        let rep = compare(&old, &new, &CompareOpts::default());
        assert!(!rep.is_clean());
        assert!(rep.findings[0].contains("grid mismatch"));
    }
}
