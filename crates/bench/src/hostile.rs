//! The `hostile` target: a fixed matrix of hostile network scenarios and
//! the robustness scorecard it produces.
//!
//! The paper's sweeps vary only the WAN link parameters of an otherwise
//! pristine, homogeneous machine. Real multi-site deployments are messier:
//! clusters differ in compute speed and size, wide-area links carry other
//! people's traffic, and their quality drifts over the day. This target
//! re-runs every application (both variants) under five named scenarios —
//! all sharing the paper's 10 ms / 1 MByte/s operating point — and asks
//! whether each paper optimization *still wins* when the network turns
//! hostile:
//!
//! | Scenario | Machine |
//! |---|---|
//! | `clean` | the paper's 4x8, no interference |
//! | `slow-home` | 4x8, cluster 0 (sequencers/masters) at 0.4x compute |
//! | `cross` | 4x8, seeded cross-traffic occupying 50% of each WAN link |
//! | `wave` | 4x8, diurnal WAN quality: latency x3, bandwidth x0.33 |
//! | `storm` | 16+8+4+4 tiered clusters + 30% cross-traffic + diurnal WAN |
//!
//! Every scenario is a pure function of the fixed [`HOSTILE_SEED`], so the
//! committed `BENCH_hostile.json` baseline is compared exactly in CI
//! (`numagap bench --compare ... --virtual-only`), like the paper targets.

use std::time::Instant;

use numagap_apps::{run_app, AppId, SuiteConfig, Variant};
use numagap_net::{
    CrossTrafficPlan, HeteroPreset, LinkParams, LinkSchedule, Topology, TwoLayerSpec, WanTopology,
};
use numagap_rt::Machine;
use numagap_sim::SimDuration;

use crate::record::{BenchSummary, RunRecord};
use crate::targets::{variants, SweepOpts};
use crate::{engine, write_csv, BenchError};

/// WAN latency (ms) shared by every scenario — the paper's mid-grid point.
pub const HOSTILE_LATENCY_MS: f64 = 10.0;
/// WAN bandwidth (MByte/s) shared by every scenario.
pub const HOSTILE_BANDWIDTH_MBS: f64 = 1.0;
/// The seed every scenario's cross-traffic and schedule streams draw from.
pub const HOSTILE_SEED: u64 = 1;

/// One named hostile scenario.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    name: &'static str,
    what: &'static str,
    /// Explicit cluster sizes (equal sizes render as the symmetric label).
    sizes: &'static [usize],
    hetero: HeteroPreset,
    /// Cross-traffic intensity (0 disables the plan).
    cross: f64,
    /// Whether the diurnal WAN-quality wave is on.
    wave: bool,
}

/// The canonical scenario order (the committed baseline pins it).
const SCENARIOS: [Scenario; 5] = [
    Scenario {
        name: "clean",
        what: "4x8 homogeneous, no interference (the paper's machine)",
        sizes: &[8, 8, 8, 8],
        hetero: HeteroPreset::Uniform,
        cross: 0.0,
        wave: false,
    },
    Scenario {
        name: "slow-home",
        what: "4x8, home cluster (sequencers/masters) at 0.4x compute",
        sizes: &[8, 8, 8, 8],
        hetero: HeteroPreset::SlowHome,
        cross: 0.0,
        wave: false,
    },
    Scenario {
        name: "cross",
        what: "4x8, seeded cross-traffic occupying 50% of each WAN link",
        sizes: &[8, 8, 8, 8],
        hetero: HeteroPreset::Uniform,
        cross: 0.5,
        wave: false,
    },
    Scenario {
        name: "wave",
        what: "4x8, diurnal WAN: latency x3, bandwidth x0.33, 500 ms period",
        sizes: &[8, 8, 8, 8],
        hetero: HeteroPreset::Uniform,
        cross: 0.0,
        wave: true,
    },
    Scenario {
        name: "storm",
        what: "16+8+4+4 tiered clusters + 30% cross-traffic + diurnal WAN",
        sizes: &[16, 8, 4, 4],
        hetero: HeteroPreset::Tiered,
        cross: 0.3,
        wave: true,
    },
];

/// The interconnect spec of one scenario — a pure function of the scenario,
/// [`HOSTILE_SEED`], and the optional wide-area wiring override (`None`
/// keeps the full mesh, bit-identical to the committed baseline).
fn scenario_spec(s: &Scenario, wan: Option<WanTopology>) -> TwoLayerSpec {
    let topo = s.hetero.apply(Topology::new(s.sizes));
    let mut spec = TwoLayerSpec::new(topo).inter(LinkParams::wide_area(
        HOSTILE_LATENCY_MS,
        HOSTILE_BANDWIDTH_MBS,
    ));
    if let Some(t) = wan {
        spec = spec.wan_topology(t);
    }
    if s.cross > 0.0 {
        spec = spec.cross_traffic(CrossTrafficPlan::new(HOSTILE_SEED).intensity(s.cross));
    }
    if s.wave {
        spec = spec.link_schedule(
            LinkSchedule::diurnal(HOSTILE_SEED, SimDuration::from_millis(500))
                .latency_factor(3.0)
                .bandwidth_factor(0.33),
        );
    }
    spec
}

/// The optimization's win in a scenario: how much of the unoptimized
/// makespan the optimized variant saves, as a percentage (negative means
/// the optimization *hurts* there).
fn win_pct(unopt: f64, opt: f64) -> f64 {
    100.0 * (unopt - opt) / unopt
}

/// Runs the hostile target: the scenario x app x variant matrix through the
/// worker pool, a stdout robustness scorecard, `hostile.csv`, and
/// `BENCH_hostile.json`.
///
/// # Errors
///
/// Simulator failures in any cell and artifact I/O.
pub fn run_hostile(opts: &SweepOpts) -> Result<BenchSummary, BenchError> {
    let cfg = SuiteConfig::at(opts.scale);
    // Every scenario machine has 4 clusters, so one validation covers all.
    let wan = opts.checked_topology()?;
    let mut cells: Vec<(usize, AppId, Variant)> = Vec::new();
    for (si, _) in SCENARIOS.iter().enumerate() {
        for app in AppId::ALL {
            for &variant in variants(app) {
                cells.push((si, app, variant));
            }
        }
    }
    println!(
        "== hostile: robustness scorecard at {HOSTILE_LATENCY_MS} ms / \
         {HOSTILE_BANDWIDTH_MBS} MB/s (scale={:?}, jobs={}, {} cells) ==",
        opts.scale,
        opts.jobs,
        cells.len()
    );
    for s in &SCENARIOS {
        println!("   {:<10} {}", s.name, s.what);
    }
    let t0 = Instant::now();
    let label = if opts.progress { Some("hostile") } else { None };
    let outs = engine::run_cells(&cells, opts.jobs, label, |_, &(si, app, variant)| {
        let start = Instant::now();
        let machine = Machine::new(scenario_spec(&SCENARIOS[si], wan));
        let result = run_app(app, &cfg, variant, &machine).map_err(|e| e.to_string());
        (result, start.elapsed().as_secs_f64())
    });
    let scale_name = format!("{:?}", opts.scale).to_ascii_lowercase();
    let mut summary = BenchSummary::new("hostile", scale_name, opts.quick, opts.jobs);
    summary.wall_s = t0.elapsed().as_secs_f64();
    let mut rows = Vec::new();
    // (scenario index, app, variant) -> makespan seconds, canonical order.
    let mut elapsed: Vec<(usize, AppId, Variant, f64)> = Vec::new();
    for (&(si, app, variant), (result, wall)) in cells.iter().zip(&outs) {
        let s = &SCENARIOS[si];
        let run = match result {
            Ok(run) => run,
            Err(e) => {
                return Err(BenchError::Sim(format!(
                    "{app}/{variant} under '{}' failed: {e}",
                    s.name
                )))
            }
        };
        elapsed.push((si, app, variant, run.elapsed.as_secs_f64()));
        rows.push(format!(
            "{app},{variant},{},{:.6},{},{}",
            s.name,
            run.elapsed.as_secs_f64(),
            run.net.inter_msgs,
            run.net.cross_msgs
        ));
        summary.records.push(RunRecord::from_run(
            format!("{app}/{variant}/{}", s.name),
            *wall,
            run,
        ));
    }
    let time_of = |si: usize, app: AppId, variant: Variant| {
        elapsed
            .iter()
            .find(|&&(s, a, v, _)| s == si && a == app && v == variant)
            .map(|&(_, _, _, t)| t)
            .expect("cell enumerated")
    };

    // The scorecard: does each paper optimization still win per scenario?
    println!(
        "\noptimization win per scenario (unoptimized -> optimized makespan \
         reduction, % of unoptimized; negative = the optimization hurts):"
    );
    print!("{:<12}", "Program");
    for s in &SCENARIOS {
        print!(" {:>10}", s.name);
    }
    println!();
    for app in AppId::ALL {
        if !app.has_optimized() {
            continue;
        }
        print!("{:<12}", app.to_string());
        for si in 0..SCENARIOS.len() {
            let w = win_pct(
                time_of(si, app, Variant::Unoptimized),
                time_of(si, app, Variant::Optimized),
            );
            print!(" {w:>9.1}%");
        }
        println!();
    }
    println!("  (fft has no optimized variant and is excluded from the scorecard)");

    // The headline question: ASP's sequencer migration moves the sequencer
    // off the home cluster — does it still win when that cluster is slow?
    let asp_clean = win_pct(
        time_of(0, AppId::Asp, Variant::Unoptimized),
        time_of(0, AppId::Asp, Variant::Optimized),
    );
    let slow_si = SCENARIOS
        .iter()
        .position(|s| s.name == "slow-home")
        .expect("scenario listed");
    let asp_slow = win_pct(
        time_of(slow_si, AppId::Asp, Variant::Unoptimized),
        time_of(slow_si, AppId::Asp, Variant::Optimized),
    );
    println!(
        "\n  asp sequencer migration: {asp_clean:.1}% win on the clean machine, \
         {asp_slow:.1}% with a slow home cluster -> {}",
        if asp_slow > 0.0 {
            "still wins"
        } else {
            "no longer wins"
        }
    );

    write_csv(
        &opts.out,
        "hostile.csv",
        "app,variant,scenario,elapsed_s,inter_msgs,cross_msgs",
        &rows,
    )?;
    let path = opts.out.join("BENCH_hostile.json");
    summary.write(&path)?;
    println!("  [wrote {}]", path.display());
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{compare, CompareOpts};
    use numagap_apps::Scale;

    fn opts(dir: &std::path::Path) -> SweepOpts {
        SweepOpts {
            scale: Scale::Small,
            quick: false,
            jobs: 4,
            out: dir.to_path_buf(),
            progress: false,
            topology: None,
        }
    }

    #[test]
    fn scenario_specs_are_valid_and_storm_is_asymmetric() {
        for s in &SCENARIOS {
            let spec = scenario_spec(s, None);
            assert_eq!(spec.topology.nclusters(), 4, "{}", s.name);
            assert_eq!(spec.topology.nprocs(), 32, "{}", s.name);
        }
        let storm = scenario_spec(&SCENARIOS[4], None);
        assert_eq!(storm.topology.label(), "16+8+4+4");
        assert!(storm.topology.is_heterogeneous());
        assert!(storm.cross_traffic.is_some());
        assert!(storm.link_schedule.is_some());
        let clean = scenario_spec(&SCENARIOS[0], None);
        assert_eq!(clean.topology.label(), "4x8");
        assert!(clean.cross_traffic.is_none() && clean.link_schedule.is_none());
    }

    #[test]
    fn scenario_specs_compose_with_routed_links() {
        // PR 7's hostile plans (cross-traffic, diurnal schedule, tiered
        // asymmetric clusters) must compose with a routed wide-area layer.
        let storm = scenario_spec(&SCENARIOS[4], Some(WanTopology::Ring));
        assert_eq!(storm.wan_topology, WanTopology::Ring);
        assert!(storm.cross_traffic.is_some() && storm.link_schedule.is_some());
        let clean = scenario_spec(&SCENARIOS[0], Some(WanTopology::FatTree { pod: 2 }));
        assert_eq!(clean.wan_topology, WanTopology::FatTree { pod: 2 });
        // Building the machine exercises the virtual-switch sizing.
        let _ = Machine::new(clean);
    }

    #[test]
    fn hostile_sweep_is_deterministic_and_scores_every_pair() {
        let dir = std::env::temp_dir().join("numagap-hostile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = run_hostile(&opts(&dir)).unwrap();
        let b = run_hostile(&opts(&dir)).unwrap();
        // 5 scenarios x (5 apps x 2 variants + fft) cells.
        assert_eq!(a.records.len(), SCENARIOS.len() * 11);
        let rep = compare(
            &a,
            &b,
            &CompareOpts {
                wall_clock: false,
                ..CompareOpts::default()
            },
        );
        assert!(rep.is_clean(), "{:?}", rep.findings);
        let loaded = BenchSummary::load(&dir.join("BENCH_hostile.json")).unwrap();
        assert_eq!(loaded, b);
        // Hostile scenarios are strictly slower than clean for every pair.
        for app in AppId::ALL {
            for &variant in variants(app) {
                let t = |name: &str| {
                    a.records
                        .iter()
                        .find(|r| r.key == format!("{app}/{variant}/{name}"))
                        .unwrap()
                        .virtual_s
                };
                assert!(
                    t("storm") > t("clean"),
                    "{app}/{variant}: storm {} !> clean {}",
                    t("storm"),
                    t("clean")
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
