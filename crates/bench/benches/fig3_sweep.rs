//! Figure 3: relative speedup (vs the all-Myrinet cluster) of all six
//! applications, unoptimized and optimized, across the paper's grid of
//! inter-cluster bandwidths and latencies — 12 panels.
//!
//! Thin wrapper over the parallel experiment engine; `REPRO_JOBS` sets the
//! worker count. Writes `fig3.csv` and `BENCH_fig3.json`.

use numagap_bench::targets::{run_fig3, SweepOpts};

fn main() {
    let result = SweepOpts::from_env()
        .map_err(Into::into)
        .and_then(|opts| run_fig3(&opts));
    if let Err(e) = result {
        eprintln!("fig3_sweep: {e}");
        std::process::exit(2);
    }
}
