//! Figure 3: relative speedup (vs the all-Myrinet cluster) of all six
//! applications, unoptimized and optimized, across the paper's grid of
//! inter-cluster bandwidths and latencies — 12 panels.

use numagap_apps::{AppId, SuiteConfig, Variant};
use numagap_bench::{
    baselines, must_run, print_grid, quick_from_env, relative_speedup_pct, scale_from_env,
    wan_machine, write_csv,
};
use numagap_net::{PAPER_BANDWIDTHS_MBS, PAPER_LATENCIES_MS};

fn main() {
    let scale = scale_from_env();
    let quick = quick_from_env();
    let cfg = SuiteConfig::at(scale);
    let (lats, bws): (Vec<f64>, Vec<f64>) = if quick {
        (vec![0.5, 10.0, 300.0], vec![6.3, 0.3, 0.03])
    } else {
        (PAPER_LATENCIES_MS.to_vec(), PAPER_BANDWIDTHS_MBS.to_vec())
    };
    println!("== Figure 3: speedup relative to an all-Myrinet cluster ==");
    println!(
        "   scale={scale:?} quick={quick} machine=4x8, grid {}x{}",
        lats.len(),
        bws.len()
    );
    let base = baselines(&cfg, &AppId::ALL);
    let mut rows = Vec::new();
    for (app, tl) in base {
        println!("\n{app}: all-Myrinet 32p runtime {:.3}s", tl.as_secs_f64());
        let variants: &[Variant] = if app.has_optimized() {
            &[Variant::Unoptimized, Variant::Optimized]
        } else {
            &[Variant::Unoptimized]
        };
        for &variant in variants {
            let mut cells = Vec::new();
            for &lat in &lats {
                let mut row = Vec::new();
                for &bw in &bws {
                    let machine = wan_machine(lat, bw);
                    let run = must_run(app, &cfg, variant, &machine);
                    let pct = relative_speedup_pct(tl, run.elapsed);
                    rows.push(format!(
                        "{app},{variant},{lat},{bw},{pct:.2},{:.6}",
                        run.elapsed.as_secs_f64()
                    ));
                    row.push(pct);
                }
                cells.push(row);
            }
            print_grid(
                &format!("{app}, {variant}, 32 processors, 4 clusters"),
                &lats,
                &bws,
                &cells,
            );
        }
    }
    write_csv(
        "fig3.csv",
        "app,variant,latency_ms,bandwidth_mbs,rel_speedup_pct,elapsed_s",
        &rows,
    );
}
