//! §5.1 cluster-structure experiment: with a fully connected wide-area
//! network, more and smaller clusters *increase* bisection bandwidth, so a
//! setup of 8 clusters of 4 outperforms 4 clusters of 8 (and so on) despite
//! replacing fast links with slow ones.

use numagap_apps::{AppId, SuiteConfig, Variant};
use numagap_bench::{must_run, out_dir, scale_from_env, write_csv};
use numagap_net::{das_spec, WanTopology};
use numagap_rt::Machine;

fn main() {
    cluster_shapes();
    wan_topologies();
}

/// Writes one CSV artifact; artifact I/O failure is exit code 2.
fn csv(name: &str, header: &str, rows: &[String]) {
    if let Err(e) = out_dir().and_then(|dir| write_csv(&dir, name, header, rows)) {
        eprintln!("cluster_structure: failed to write {name}: {e}");
        std::process::exit(2);
    }
}

fn cluster_shapes() {
    let scale = scale_from_env();
    let cfg = SuiteConfig::at(scale);
    // A bandwidth-limited operating point, where the effect lives.
    let (lat_ms, bw) = (1.0, 0.3);
    let shapes = [(2usize, 16usize), (4, 8), (8, 4), (16, 2)];
    println!(
        "== Cluster structure: 32 processors, WAN {lat_ms} ms / {bw} MB/s (scale={scale:?}) ==\n"
    );
    print!("{:<12}", "Program");
    for (c, p) in shapes {
        print!(" {:>10}", format!("{c}x{p}"));
    }
    println!("   (runtime in seconds; lower is better)");
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let variant = if app.has_optimized() {
            Variant::Optimized
        } else {
            Variant::Unoptimized
        };
        print!("{:<12}", app.to_string());
        for (c, per) in shapes {
            let machine = Machine::new(das_spec(c, per, lat_ms, bw));
            let run = must_run(app, &cfg, variant, &machine);
            print!(" {:>10.3}", run.elapsed.as_secs_f64());
            rows.push(format!(
                "{app},{c},{per},{:.6},{}",
                run.elapsed.as_secs_f64(),
                run.net.inter_msgs
            ));
        }
        println!();
    }
    csv(
        "cluster_structure.csv",
        "app,clusters,procs_per_cluster,elapsed_s,inter_msgs",
        &rows,
    );
}

/// The paper: the more-smaller-clusters advantage comes from the fully
/// connected WAN's bisection bandwidth, and "will diminish, and disappear in
/// star, ring, or bus topologies". Rerun the 8x4 shape under each wiring.
fn wan_topologies() {
    let scale = scale_from_env();
    let cfg = SuiteConfig::at(scale);
    let (lat_ms, bw) = (1.0, 0.3);
    let topologies = [
        WanTopology::FullMesh,
        WanTopology::Star { hub: 0 },
        WanTopology::Ring,
    ];
    println!("\n== WAN wiring: 8 clusters x 4 processors, {lat_ms} ms / {bw} MB/s ==\n");
    print!("{:<12}", "Program");
    for t in &topologies {
        print!(" {:>12}", t.label());
    }
    println!("   (runtime in seconds)");
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let variant = if app.has_optimized() {
            Variant::Optimized
        } else {
            Variant::Unoptimized
        };
        print!("{:<12}", app.to_string());
        for &topology in &topologies {
            let spec = das_spec(8, 4, lat_ms, bw).wan_topology(topology);
            let run = must_run(app, &cfg, variant, &Machine::new(spec));
            print!(" {:>12.3}", run.elapsed.as_secs_f64());
            rows.push(format!(
                "{app},{},{:.6}",
                topology.label(),
                run.elapsed.as_secs_f64()
            ));
        }
        println!();
    }
    println!("  (the full mesh's bisection-bandwidth advantage disappears on");
    println!("   the star and the ring, as the paper predicts)");
    csv("wan_topology.csv", "app,wan_topology,elapsed_s", &rows);
}
