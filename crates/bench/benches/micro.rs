//! Criterion microbenchmarks of the simulation substrate itself: event
//! kernel throughput, two-layer cost-model evaluation, combining buffers and
//! barrier latency. These quantify how fast the simulator runs experiments,
//! not the paper's results.

use criterion::{criterion_group, criterion_main, Criterion};

use numagap_net::{das_spec, uniform_spec, TwoLayerNetwork};
use numagap_rt::{Barrier, Machine};
use numagap_sim::{Network, ProcId, SimDuration, SimTime, Tag};

fn bench_transfer(c: &mut Criterion) {
    c.bench_function("net/two_layer_transfer", |b| {
        let mut net = TwoLayerNetwork::new(das_spec(4, 8, 10.0, 1.0));
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            std::hint::black_box(net.transfer(
                ProcId((t % 32) as usize),
                ProcId(((t * 7 + 5) % 32) as usize),
                256,
                SimTime::from_nanos(t),
            ))
        });
    });
}

fn bench_kernel_round_trip(c: &mut Criterion) {
    c.bench_function("sim/ping_pong_1000", |b| {
        b.iter(|| {
            let machine = Machine::new(uniform_spec(2));
            machine
                .run(|ctx| {
                    let tag = Tag::app(0);
                    if ctx.rank() == 0 {
                        for _ in 0..1000u32 {
                            ctx.send(1, tag, 1u8, 1);
                            ctx.recv_tag(tag);
                        }
                    } else {
                        for _ in 0..1000u32 {
                            ctx.recv_tag(tag);
                            ctx.send(0, tag, 1u8, 1);
                        }
                    }
                })
                .unwrap()
        });
    });
}

fn bench_compute_only(c: &mut Criterion) {
    c.bench_function("sim/compute_ops_10000", |b| {
        b.iter(|| {
            let machine = Machine::new(uniform_spec(1));
            machine
                .run(|ctx| {
                    for _ in 0..10_000u32 {
                        ctx.compute(SimDuration::from_nanos(10));
                    }
                })
                .unwrap()
        });
    });
}

fn bench_barrier(c: &mut Criterion) {
    c.bench_function("rt/barrier_32p_x32", |b| {
        b.iter(|| {
            let machine = Machine::new(uniform_spec(32));
            machine
                .run(|ctx| {
                    let mut barrier = Barrier::new(0);
                    for _ in 0..32 {
                        barrier.wait(ctx);
                    }
                })
                .unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transfer, bench_kernel_round_trip, bench_compute_only, bench_barrier
}
criterion_main!(benches);
