//! Table 1: single-cluster (all-Myrinet) speedups on 8 and 32 processors,
//! total traffic, and runtime — plus Table 2 (communication patterns and
//! optimizations) for reference.
//!
//! Thin wrapper over the parallel experiment engine; `REPRO_JOBS` sets the
//! worker count. Writes `table1.csv` and `BENCH_table1.json`.

use numagap_bench::targets::{run_table1, SweepOpts};

fn main() {
    let result = SweepOpts::from_env()
        .map_err(Into::into)
        .and_then(|opts| run_table1(&opts));
    if let Err(e) = result {
        eprintln!("table1: {e}");
        std::process::exit(2);
    }
}
