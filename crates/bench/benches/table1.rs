//! Table 1: single-cluster (all-Myrinet) speedups on 8 and 32 processors,
//! total traffic, and runtime — plus Table 2 (communication patterns and
//! optimizations) for reference.

use numagap_apps::{AppId, SuiteConfig, Variant};
use numagap_bench::{must_run, scale_from_env, write_csv};
use numagap_net::uniform_spec;
use numagap_rt::Machine;

fn main() {
    let scale = scale_from_env();
    let cfg = SuiteConfig::at(scale);
    println!("== Table 1: single-cluster performance (scale={scale:?}) ==\n");
    println!(
        "{:<12} {:>12} {:>12} {:>16} {:>14}",
        "Program", "Speedup 32p", "Speedup 8p", "Traffic MB/s@32", "Runtime 32p(s)"
    );
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let serial = must_run(
            app,
            &cfg,
            Variant::Unoptimized,
            &Machine::new(uniform_spec(1)),
        );
        let p8 = must_run(
            app,
            &cfg,
            Variant::Unoptimized,
            &Machine::new(uniform_spec(8)),
        );
        let p32 = must_run(
            app,
            &cfg,
            Variant::Unoptimized,
            &Machine::new(uniform_spec(32)),
        );
        let s8 = serial.elapsed.as_secs_f64() / p8.elapsed.as_secs_f64();
        let s32 = serial.elapsed.as_secs_f64() / p32.elapsed.as_secs_f64();
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>16.2} {:>14.3}",
            app.to_string(),
            s32,
            s8,
            p32.total_mbs,
            p32.elapsed.as_secs_f64()
        );
        rows.push(format!(
            "{app},{s32:.2},{s8:.2},{:.3},{:.6},{:.6}",
            p32.total_mbs,
            p32.elapsed.as_secs_f64(),
            serial.elapsed.as_secs_f64()
        ));
    }
    write_csv(
        "table1.csv",
        "app,speedup32,speedup8,traffic_mbs_32,runtime32_s,runtime1_s",
        &rows,
    );

    println!("\n== Table 2: communication patterns and optimizations ==\n");
    println!(
        "{:<12} {:<28} {:<30}",
        "Program", "Communication", "Optimization"
    );
    for app in AppId::ALL {
        println!(
            "{:<12} {:<28} {:<30}",
            app.to_string(),
            app.pattern(),
            app.optimization()
        );
    }
}
