//! Figure 1: inter-cluster communication volume (MByte/s per cluster) versus
//! message rate (messages/s per cluster) for the six *original* applications
//! on 4 clusters of 8 at the 0.5 ms / 6.0 MByte/s operating point.
//!
//! Thin wrapper over the parallel experiment engine; `REPRO_JOBS` sets the
//! worker count. Writes `fig1.csv` and `BENCH_fig1.json`.

use numagap_bench::targets::{run_fig1, SweepOpts};

fn main() {
    let result = SweepOpts::from_env()
        .map_err(Into::into)
        .and_then(|opts| run_fig1(&opts));
    if let Err(e) = result {
        eprintln!("fig1_traffic: {e}");
        std::process::exit(2);
    }
}
