//! Figure 1: inter-cluster communication volume (MByte/s per cluster) versus
//! message rate (messages/s per cluster) for the six *original* applications
//! on 4 clusters of 8 at the 0.5 ms / 6.0 MByte/s operating point.

use numagap_apps::{AppId, SuiteConfig, Variant};
use numagap_bench::{must_run, scale_from_env, wan_machine, write_csv};
use numagap_net::{FIG1_BANDWIDTH_MBS, FIG1_LATENCY_MS};

fn main() {
    let scale = scale_from_env();
    let cfg = SuiteConfig::at(scale);
    let machine = wan_machine(FIG1_LATENCY_MS, FIG1_BANDWIDTH_MBS);
    println!(
        "== Figure 1: inter-cluster traffic, 4 clusters x 8, link {} ms / {} MB/s (scale={scale:?}) ==\n",
        FIG1_LATENCY_MS, FIG1_BANDWIDTH_MBS
    );
    println!(
        "{:<12} {:>16} {:>16} {:>12}",
        "Program", "Volume MB/s/clus", "Messages/s/clus", "Runtime (s)"
    );
    let mut rows = Vec::new();
    for app in AppId::ALL {
        let run = must_run(app, &cfg, Variant::Unoptimized, &machine);
        println!(
            "{:<12} {:>16.3} {:>16.0} {:>12.3}",
            app.to_string(),
            run.inter_mbs_per_cluster,
            run.inter_msgs_per_cluster,
            run.elapsed.as_secs_f64()
        );
        rows.push(format!(
            "{app},{:.4},{:.1},{:.6}",
            run.inter_mbs_per_cluster,
            run.inter_msgs_per_cluster,
            run.elapsed.as_secs_f64()
        ));
    }
    write_csv(
        "fig1.csv",
        "app,inter_mbs_per_cluster,inter_msgs_per_sec_per_cluster,elapsed_s",
        &rows,
    );
}
