//! Figure 4: percentage of runtime spent in inter-cluster communication —
//! left panel sweeps bandwidth at a fixed 3.3 ms latency, right panel sweeps
//! latency at a fixed 0.9 MByte/s bandwidth. Computed, as in the paper, as
//! `(T_multi - T_single) / T_multi`.

use numagap_apps::{AppId, SuiteConfig, Variant};
use numagap_bench::{
    baselines, comm_time_pct, must_run, quick_from_env, scale_from_env, wan_machine, write_csv,
};
use numagap_net::{
    FIG4_FIXED_BANDWIDTH_MBS, FIG4_FIXED_LATENCY_MS, PAPER_BANDWIDTHS_MBS, PAPER_LATENCIES_MS,
};

fn main() {
    let scale = scale_from_env();
    let quick = quick_from_env();
    let cfg = SuiteConfig::at(scale);
    let (lats, bws): (Vec<f64>, Vec<f64>) = if quick {
        (vec![0.5, 10.0, 300.0], vec![6.3, 0.3, 0.03])
    } else {
        (PAPER_LATENCIES_MS.to_vec(), PAPER_BANDWIDTHS_MBS.to_vec())
    };
    println!("== Figure 4: inter-cluster communication time (scale={scale:?}) ==");
    // The paper measures the optimized programs here (the surviving ones).
    let base = baselines(&cfg, &AppId::ALL);
    let mut rows = Vec::new();

    println!("\n-- left: sweep bandwidth at {FIG4_FIXED_LATENCY_MS} ms latency --");
    println!("{:<12} comm% per bandwidth (descending MB/s)", "Program");
    for (app, tl) in &base {
        let variant = if app.has_optimized() {
            Variant::Optimized
        } else {
            Variant::Unoptimized
        };
        print!("{:<12}", app.to_string());
        for &bw in &bws {
            let run = must_run(*app, &cfg, variant, &wan_machine(FIG4_FIXED_LATENCY_MS, bw));
            let pct = comm_time_pct(*tl, run.elapsed);
            print!(" {pct:>6.1}%");
            rows.push(format!(
                "{app},bandwidth_sweep,{FIG4_FIXED_LATENCY_MS},{bw},{pct:.2}"
            ));
        }
        println!();
    }

    println!("\n-- right: sweep latency at {FIG4_FIXED_BANDWIDTH_MBS} MB/s --");
    println!("{:<12} comm% per latency (ascending ms)", "Program");
    for (app, tl) in &base {
        let variant = if app.has_optimized() {
            Variant::Optimized
        } else {
            Variant::Unoptimized
        };
        print!("{:<12}", app.to_string());
        for &lat in &lats {
            let run = must_run(
                *app,
                &cfg,
                variant,
                &wan_machine(lat, FIG4_FIXED_BANDWIDTH_MBS),
            );
            let pct = comm_time_pct(*tl, run.elapsed);
            print!(" {pct:>6.1}%");
            rows.push(format!(
                "{app},latency_sweep,{lat},{FIG4_FIXED_BANDWIDTH_MBS},{pct:.2}"
            ));
        }
        println!();
    }
    write_csv(
        "fig4.csv",
        "app,sweep,latency_ms,bandwidth_mbs,comm_time_pct",
        &rows,
    );
}
