//! Figure 4: percentage of runtime spent in inter-cluster communication —
//! left panel sweeps bandwidth at a fixed 3.3 ms latency, right panel sweeps
//! latency at a fixed 0.9 MByte/s bandwidth. Computed, as in the paper, as
//! `(T_multi - T_single) / T_multi`.
//!
//! Thin wrapper over the parallel experiment engine; `REPRO_JOBS` sets the
//! worker count. Writes `fig4.csv` and `BENCH_fig4.json`.

use numagap_bench::targets::{run_fig4, SweepOpts};

fn main() {
    let result = SweepOpts::from_env()
        .map_err(Into::into)
        .and_then(|opts| run_fig4(&opts));
    if let Err(e) = result {
        eprintln!("fig4_comm_time: {e}");
        std::process::exit(2);
    }
}
