//! §6 MagPIe experiment: completion time of the fourteen MPI collective
//! operations, flat (MPICH-like) versus cluster-aware (MagPIe-like), at the
//! paper's operating point of 10 ms wide-area latency and 1 MByte/s — where
//! the paper reports speedups of up to 10x.

use numagap_bench::{out_dir, quick_from_env, wan_machine, write_csv};
use numagap_collectives::{Algo, Coll};
use numagap_rt::{Ctx, Machine};
use numagap_sim::SimDuration;

/// Writes one CSV artifact; artifact I/O failure is exit code 2.
fn csv(name: &str, header: &str, rows: &[String]) {
    if let Err(e) = out_dir().and_then(|dir| write_csv(&dir, name, header, rows)) {
        eprintln!("magpie_bench: failed to write {name}: {e}");
        std::process::exit(2);
    }
}

/// Runs `iters` repetitions of one collective and returns mean completion
/// time. Iterations are barrier-separated so they do not overlap, and the
/// cost of the barriers themselves is measured separately and subtracted.
fn time_op(
    machine: &Machine,
    algo: Algo,
    iters: usize,
    op: &'static str,
    elems: usize,
) -> SimDuration {
    let measure = |with_op: bool| {
        let report = machine
            .run(move |ctx| {
                let mut coll = Coll::new(0, algo);
                let mut sync = Coll::new(1, algo);
                // Warm-up barrier so everyone starts together.
                sync.barrier(ctx);
                let start = ctx.now();
                for _ in 0..iters {
                    if with_op {
                        run_one(ctx, &mut coll, op, elems);
                    }
                    sync.barrier(ctx);
                }
                ctx.now() - start
            })
            .unwrap();
        // The slowest rank's elapsed time.
        report.results.into_iter().max().unwrap()
    };
    let with_op = measure(true);
    let barriers_only = measure(false);
    let net = with_op.saturating_sub(barriers_only);
    SimDuration::from_nanos(net.as_nanos() / iters as u64)
}

fn run_one(ctx: &mut Ctx<'_>, coll: &mut Coll, op: &str, elems: usize) {
    let me = ctx.rank();
    let p = ctx.nprocs();
    let vec = vec![1.0f64; elems];
    match op {
        "barrier" => coll.barrier(ctx),
        "bcast" => {
            let data = if me == 0 { Some(vec) } else { None };
            coll.bcast(ctx, 0, data);
        }
        "reduce" => {
            coll.reduce(ctx, 0, vec, |a, b| {
                a.iter().zip(b).map(|(x, y)| x + y).collect()
            });
        }
        "allreduce" => {
            coll.allreduce(ctx, vec, |a, b| {
                a.iter().zip(b).map(|(x, y)| x + y).collect()
            });
        }
        "gather" => {
            coll.gatherv(ctx, 0, vec);
        }
        "gatherv" => {
            coll.gatherv(ctx, 0, vec![me as f64; elems / 2 + me % 3]);
        }
        "scatter" => {
            let data = if me == 0 { Some(vec![vec; p]) } else { None };
            coll.scatterv(ctx, 0, data);
        }
        "scatterv" => {
            let data = if me == 0 {
                Some((0..p).map(|q| vec![q as f64; elems / 2 + q % 3]).collect())
            } else {
                None
            };
            coll.scatterv(ctx, 0, data);
        }
        "allgather" => {
            coll.allgatherv(ctx, vec);
        }
        "allgatherv" => {
            coll.allgatherv(ctx, vec![me as f64; elems / 2 + me % 3]);
        }
        "alltoall" => {
            coll.alltoallv(ctx, vec![vec![1.0f64; elems / p.max(1)]; p]);
        }
        "alltoallv" => {
            coll.alltoallv(
                ctx,
                (0..p)
                    .map(|q| vec![1.0f64; elems / p.max(1) + q % 3])
                    .collect(),
            );
        }
        "scan" => {
            coll.scan(ctx, vec, |a, b| {
                a.iter().zip(b).map(|(x, y)| x + y).collect()
            });
        }
        "reduce_scatter" => {
            coll.reduce_scatter(ctx, vec![vec![1.0f64; elems / p.max(1)]; p], |a, b| {
                a.iter().zip(b).map(|(x, y)| x + y).collect()
            });
        }
        other => panic!("unknown op {other}"),
    }
}

const OPS: [&str; 14] = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "gatherv",
    "scatter",
    "scatterv",
    "allgather",
    "allgatherv",
    "alltoall",
    "alltoallv",
    "scan",
    "reduce_scatter",
];

fn main() {
    let quick = quick_from_env();
    // The paper's Section 6 operating point.
    let machine = wan_machine(10.0, 1.0);
    let iters = if quick { 2 } else { 5 };
    let elems = 2048; // 16 KB payloads
    println!("== MagPIe: collective completion time, 4x8, 10 ms / 1 MB/s WAN ==\n");
    println!(
        "{:<16} {:>12} {:>14} {:>8}",
        "Operation", "flat (ms)", "aware (ms)", "speedup"
    );
    let mut rows = Vec::new();
    let mut best: f64 = 0.0;
    for op in OPS {
        let flat = time_op(&machine, Algo::Flat, iters, op, elems);
        let aware = time_op(&machine, Algo::ClusterAware, iters, op, elems);
        let speedup = flat.as_secs_f64() / aware.as_secs_f64();
        best = best.max(speedup);
        println!(
            "{:<16} {:>12.3} {:>14.3} {:>7.2}x",
            op,
            flat.as_millis_f64(),
            aware.as_millis_f64(),
            speedup
        );
        rows.push(format!(
            "{op},{:.6},{:.6},{speedup:.3}",
            flat.as_secs_f64(),
            aware.as_secs_f64()
        ));
    }
    println!("\nbest cluster-aware speedup: {best:.1}x (paper: up to 10x)");
    csv("magpie.csv", "op,flat_s,aware_s,speedup", &rows);

    // The paper: "the system's advantage increases for higher wide area
    // latencies". Show the scan speedup as latency grows.
    println!("\n-- speedup growth with wide-area latency (scan, 16 KB) --");
    println!(
        "{:<12} {:>12} {:>14} {:>8}",
        "latency", "flat (ms)", "aware (ms)", "speedup"
    );
    let mut rows = Vec::new();
    for lat in [1.0, 3.3, 10.0, 30.0, 100.0] {
        let machine = wan_machine(lat, 1.0);
        let flat = time_op(&machine, Algo::Flat, iters, "scan", elems);
        let aware = time_op(&machine, Algo::ClusterAware, iters, "scan", elems);
        let speedup = flat.as_secs_f64() / aware.as_secs_f64();
        println!(
            "{:<12} {:>12.3} {:>14.3} {:>7.2}x",
            format!("{lat} ms"),
            flat.as_millis_f64(),
            aware.as_millis_f64(),
            speedup
        );
        rows.push(format!(
            "{lat},{:.6},{:.6},{speedup:.3}",
            flat.as_secs_f64(),
            aware.as_secs_f64()
        ));
    }
    csv(
        "magpie_latency.csv",
        "latency_ms,flat_s,aware_s,speedup",
        &rows,
    );

    // The paper: "Application kernels improve by up to a factor of 4."
    // A collective-bound power-iteration kernel, whole-program time.
    println!("\n-- application kernel: distributed power iteration --");
    println!(
        "{:<12} {:>12} {:>14} {:>8}",
        "latency", "flat (s)", "aware (s)", "speedup"
    );
    let mut rows = Vec::new();
    for lat in [3.3, 10.0, 30.0] {
        let machine = wan_machine(lat, 1.0);
        let run = |algo| {
            let cfg = numagap_apps::kernels::PowerConfig::medium();
            machine
                .run(move |ctx| numagap_apps::kernels::power_rank(ctx, &cfg, algo))
                .unwrap()
                .elapsed
        };
        let flat = run(Algo::Flat);
        let aware = run(Algo::ClusterAware);
        let speedup = flat.as_secs_f64() / aware.as_secs_f64();
        println!(
            "{:<12} {:>12.3} {:>14.3} {:>7.2}x",
            format!("{lat} ms"),
            flat.as_secs_f64(),
            aware.as_secs_f64(),
            speedup
        );
        rows.push(format!(
            "{lat},{:.6},{:.6},{speedup:.3}",
            flat.as_secs_f64(),
            aware.as_secs_f64()
        ));
    }
    println!("  (paper: kernels improve by up to a factor of 4)");
    csv(
        "magpie_kernel.csv",
        "latency_ms,flat_s,aware_s,speedup",
        &rows,
    );
}
