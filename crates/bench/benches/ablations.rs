//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. Awari combining threshold — the paper's "too much message combining
//!    results in load imbalance" tradeoff.
//! 2. Gateway per-message CPU cost — the mechanism that makes combining
//!    profitable at all.
//! 3. Barnes-Hut: message combining vs barrier relaxation, isolated.
//! 4. ASP: fixed sequencer vs migrating sequencer vs no sequencer (the
//!    paper's "drop the sequencer altogether" suggestion).
//! 5. Wide-area latency *variation* (the paper's further-work question).

use numagap_apps::asp::{asp_rank, AspConfig};
use numagap_apps::awari::{awari_rank, AwariConfig};
use numagap_apps::barnes::{barnes_rank, BarnesConfig};
use numagap_apps::water::{water_rank, WaterConfig};
use numagap_apps::Variant;
use numagap_bench::{out_dir, write_csv, CLUSTERS, PROCS_PER_CLUSTER};
use numagap_net::das_spec;
use numagap_rt::Machine;
use numagap_sim::SimDuration;

fn main() {
    awari_combining_threshold();
    gateway_overhead_sweep();
    barnes_optimization_split();
    asp_sequencer_modes();
    latency_jitter();
    real_awari_build();
}

/// Writes one CSV artifact; artifact I/O failure is exit code 2.
fn csv(name: &str, header: &str, rows: &[String]) {
    if let Err(e) = out_dir().and_then(|dir| write_csv(&dir, name, header, rows)) {
        eprintln!("ablations: failed to write {name}: {e}");
        std::process::exit(2);
    }
}

fn real_awari_build() {
    use numagap_apps::awari_real::{awari_real_rank, AwariRealConfig};
    println!("== Ablation 6: real Awari database build (5 stones, 4x8) ==\n");
    println!("{:>10} {:>14} {:>12}", "latency", "runtime (s)", "WAN msgs");
    let mut rows = Vec::new();
    for lat in [0.5, 3.3, 10.0, 30.0] {
        let cfg = AwariRealConfig {
            max_stones: 5,
            ..AwariRealConfig::small()
        };
        let machine = Machine::new(das_spec(CLUSTERS, PROCS_PER_CLUSTER, lat, 1.0));
        let report = machine
            .run(move |ctx| awari_real_rank(ctx, &cfg))
            .expect("awari build");
        println!(
            "{:>8}ms {:>14.3} {:>12}",
            lat,
            report.elapsed.as_secs_f64(),
            report.net_stats.inter_msgs
        );
        rows.push(format!(
            "{lat},{:.6},{}",
            report.elapsed.as_secs_f64(),
            report.net_stats.inter_msgs
        ));
    }
    println!("  (the within-level fixpoint needs a global round per propagation");
    println!("   step, so real retrograde analysis is brutally latency-bound —");
    println!("   the structural reason the paper's Awari never tolerates a gap)");
    csv(
        "ablation_real_awari.csv",
        "latency_ms,elapsed_s,inter_msgs",
        &rows,
    );
}

fn awari_combining_threshold() {
    println!("== Ablation 1: Awari combining threshold (optimized, 3.3 ms / 1 MB/s) ==\n");
    println!(
        "{:>10} {:>12} {:>14}",
        "threshold", "runtime (s)", "WAN msgs"
    );
    let mut rows = Vec::new();
    for combine in [1usize, 4, 16, 64, 256] {
        let cfg = AwariConfig {
            combine,
            ..AwariConfig::medium()
        };
        let machine = Machine::new(das_spec(CLUSTERS, PROCS_PER_CLUSTER, 3.3, 1.0));
        let report = machine
            .run(move |ctx| awari_rank(ctx, &cfg, Variant::Optimized))
            .expect("awari run");
        println!(
            "{combine:>10} {:>12.3} {:>14}",
            report.elapsed.as_secs_f64(),
            report.net_stats.inter_msgs
        );
        rows.push(format!(
            "{combine},{:.6},{}",
            report.elapsed.as_secs_f64(),
            report.net_stats.inter_msgs
        ));
    }
    println!("  (small thresholds drown in per-message cost; past the sweet spot");
    println!("   further combining stops helping — what remains is the stage-end");
    println!("   starvation the paper describes)\n");
    csv(
        "ablation_awari_combine.csv",
        "combine,elapsed_s,inter_msgs",
        &rows,
    );
}

fn gateway_overhead_sweep() {
    println!("== Ablation 2: gateway per-message CPU cost (Awari, 0.5 ms / 6.3 MB/s) ==\n");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "gateway us", "unopt (s)", "opt (s)", "opt gain"
    );
    let mut rows = Vec::new();
    for us in [0u64, 30, 60, 120, 240] {
        let mut elapsed = Vec::new();
        for variant in [Variant::Unoptimized, Variant::Optimized] {
            let mut spec = das_spec(CLUSTERS, PROCS_PER_CLUSTER, 0.5, 6.3);
            spec.gateway_overhead = SimDuration::from_micros(us);
            let cfg = AwariConfig::medium();
            let report = Machine::new(spec)
                .run(move |ctx| awari_rank(ctx, &cfg, variant))
                .expect("awari run");
            elapsed.push(report.elapsed.as_secs_f64());
        }
        let gain = elapsed[0] / elapsed[1];
        println!(
            "{us:>12} {:>14.3} {:>14.3} {gain:>9.2}x",
            elapsed[0], elapsed[1]
        );
        rows.push(format!(
            "{us},{:.6},{:.6},{gain:.3}",
            elapsed[0], elapsed[1]
        ));
    }
    println!("  (with free gateways, combining buys little; as per-message cost");
    println!("   grows, the second combining level becomes decisive)\n");
    csv(
        "ablation_gateway.csv",
        "gateway_us,unopt_s,opt_s,gain",
        &rows,
    );
}

fn barnes_optimization_split() {
    println!("== Ablation 3: Barnes-Hut optimization split (10 ms / 1 MB/s) ==\n");
    let machine = Machine::new(das_spec(CLUSTERS, PROCS_PER_CLUSTER, 10.0, 1.0));
    let run = |variant: Variant, force_barrier: bool| {
        let cfg = BarnesConfig {
            force_barrier,
            ..BarnesConfig::medium()
        };
        machine
            .run(move |ctx| barnes_rank(ctx, &cfg, variant))
            .expect("barnes run")
            .elapsed
            .as_secs_f64()
    };
    let unopt = run(Variant::Unoptimized, false);
    let combine_only = run(Variant::Optimized, true);
    let full_opt = run(Variant::Optimized, false);
    println!("  unoptimized (per-node combining + barrier):   {unopt:.3}s");
    println!("  + cluster combining (barrier kept):           {combine_only:.3}s");
    println!("  + relaxed barrier (the full optimization):    {full_opt:.3}s\n");
    csv(
        "ablation_barnes.csv",
        "config,elapsed_s",
        &[
            format!("unoptimized,{unopt:.6}"),
            format!("cluster_combining_only,{combine_only:.6}"),
            format!("full_optimized,{full_opt:.6}"),
        ],
    );
}

fn asp_sequencer_modes() {
    println!("== Ablation 4: ASP ordering modes (bandwidth 1 MB/s) ==\n");
    println!(
        "{:>10} {:>14} {:>16} {:>16}",
        "latency", "fixed seq (s)", "migrating (s)", "no seq (s)"
    );
    let mut rows = Vec::new();
    for lat in [0.5, 10.0, 100.0] {
        let machine = Machine::new(das_spec(CLUSTERS, PROCS_PER_CLUSTER, lat, 1.0));
        let run = |variant: Variant, skip: bool| {
            let cfg = AspConfig {
                skip_sequencer: skip,
                ..AspConfig::medium()
            };
            machine
                .run(move |ctx| asp_rank(ctx, &cfg, variant))
                .expect("asp run")
                .elapsed
                .as_secs_f64()
        };
        let fixed = run(Variant::Unoptimized, false);
        let migrating = run(Variant::Optimized, false);
        let none = run(Variant::Optimized, true);
        println!("{lat:>8}ms {fixed:>14.3} {migrating:>16.3} {none:>16.3}");
        rows.push(format!("{lat},{fixed:.6},{migrating:.6},{none:.6}"));
    }
    println!("  (migration removes nearly all ordering cost; dropping the");
    println!("   sequencer — exploiting ASP's static schedule — removes the rest)\n");
    csv(
        "ablation_asp_sequencer.csv",
        "latency_ms,fixed_s,migrating_s,none_s",
        &rows,
    );
}

fn latency_jitter() {
    println!("== Ablation 5: wide-area latency variation (Water opt, 30 ms mean / 1 MB/s) ==\n");
    println!("{:>10} {:>14}", "jitter", "runtime (s)");
    let mut rows = Vec::new();
    for jitter in [0.0, 0.25, 0.5, 0.9] {
        let spec = das_spec(CLUSTERS, PROCS_PER_CLUSTER, 30.0, 1.0).wan_latency_jitter(jitter);
        let cfg = WaterConfig::medium();
        let report = Machine::new(spec)
            .run(move |ctx| water_rank(ctx, &cfg, Variant::Optimized))
            .expect("water run");
        println!(
            "{:>9.0}% {:>14.3}",
            jitter * 100.0,
            report.elapsed.as_secs_f64()
        );
        rows.push(format!("{jitter},{:.6}", report.elapsed.as_secs_f64()));
    }
    println!("  (bulk-synchronous phases wait for the slowest message, so");
    println!("   variation hurts even at an unchanged mean — the paper's");
    println!("   open question about real wide-area links)");
    csv("ablation_jitter.csv", "jitter,elapsed_s", &rows);
}

// Appended study: the real-Awari database build (cycle-handling propagation
// rounds) vs wide-area latency — its round-synchronous structure makes it
// the most latency-sensitive workload in the repository.
//
// Invoked from main() via the hidden hook below so the bench stays a single
// binary. (See awari_real module docs.)
