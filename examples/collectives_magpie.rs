//! MagPIe in action: the same MPI-style collective executed with a
//! topology-oblivious algorithm and with the cluster-aware algorithm, on the
//! same wide-area machine.
//!
//! ```sh
//! cargo run --release --example collectives_magpie
//! ```

use twolayer::collectives::{Algo, Coll};
use twolayer::net::das_spec;
use twolayer::rt::Machine;

fn main() {
    println!("allreduce of a 64 KB vector on 4x8 processors, 10 ms / 1 MB/s WAN\n");
    for algo in [Algo::Flat, Algo::ClusterAware] {
        let machine = Machine::new(das_spec(4, 8, 10.0, 1.0));
        let report = machine
            .run(move |ctx| {
                let mut coll = Coll::new(0, algo);
                let contrib = vec![ctx.rank() as f64; 8192];
                let total = coll.allreduce(ctx, contrib, |a, b| {
                    a.iter().zip(b).map(|(x, y)| x + y).collect::<Vec<f64>>()
                });
                total[0]
            })
            .expect("run failed");
        // sum of ranks 0..31 = 496 in every element
        assert_eq!(report.results[0], 496.0);
        println!(
            "{:<14} completion {:>10}   wide-area: {:>3} messages, {:>8} bytes",
            algo.to_string(),
            report.elapsed.to_string(),
            report.net_stats.inter_msgs,
            report.net_stats.inter_payload_bytes
        );
    }
    println!("\n(the cluster-aware algorithm crosses each wide-area link once,");
    println!(" completing in about one WAN round trip — the MagPIe result)");
}
