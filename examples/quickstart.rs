//! Quickstart: build a two-layer machine, run a small SPMD program on it,
//! and read the timing and traffic results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use twolayer::net::{das_spec, numa_gap};
use twolayer::rt::Machine;
use twolayer::sim::Tag;

fn main() {
    // A DAS-like machine: 4 clusters x 8 processors, Myrinet inside the
    // clusters, and 10 ms / 1 MByte/s wide-area links between them.
    let spec = das_spec(4, 8, 10.0, 1.0);
    let (lat_gap, bw_gap) = numa_gap(&spec);
    println!(
        "machine: {} processors in {} clusters",
        spec.topology.nprocs(),
        spec.topology.nclusters()
    );
    println!("NUMA gap: {lat_gap:.0}x latency, {bw_gap:.0}x bandwidth\n");

    let machine = Machine::new(spec);
    // A toy SPMD program: everyone sends a value to rank 0, rank 0 sums.
    let report = machine
        .run(|ctx| {
            let tag = Tag::app(0);
            if ctx.rank() == 0 {
                let mut total = 0u64;
                for _ in 1..ctx.nprocs() {
                    let (_, v): (usize, u64) = ctx.recv_typed(tag);
                    total += v;
                }
                total
            } else {
                ctx.send(0, tag, ctx.rank() as u64, 8);
                0
            }
        })
        .expect("simulation failed");

    println!("result at rank 0:   {}", report.results[0]);
    println!("virtual makespan:   {}", report.elapsed);
    println!(
        "traffic:            {} intra + {} inter messages",
        report.net_stats.intra_msgs, report.net_stats.inter_msgs
    );
    println!(
        "inter-cluster data: {} bytes over the wide area",
        report.net_stats.inter_payload_bytes
    );
    // Messages from another cluster cross the WAN once each: rank 0's
    // cluster receives 24 of the 31 contributions over slow links, so the
    // makespan is dominated by one WAN latency plus gateway queueing.
    assert!(report.elapsed.as_millis_f64() >= 10.0);
}
