//! DSM programming model: a replicated histogram built by all ranks through
//! release-consistent shared objects — no explicit messages in application
//! code, yet the exchange underneath is cluster-aware.
//!
//! ```sh
//! cargo run --release --example dsm_shared_objects
//! ```

use std::collections::BTreeMap;

use twolayer::dsm::{MapPut, Replicated};
use twolayer::net::das_spec;
use twolayer::rt::Machine;

fn main() {
    let machine = Machine::new(das_spec(4, 4, 10.0, 1.0));
    let report = machine
        .run(|ctx| {
            let mut histogram = Replicated::new(0, BTreeMap::<u32, u64>::new());
            // Each rank contributes counts for "its" buckets over 3 rounds.
            for round in 0..3u64 {
                let bucket = (ctx.rank() % 5) as u32;
                histogram.write(MapPut {
                    key: bucket * 10 + round as u32,
                    value: (ctx.rank() as u64 + 1) * (round + 1),
                });
                histogram.fence(ctx);
            }
            histogram.read().clone()
        })
        .expect("simulation failed");

    // Every replica is bit-identical.
    let reference = &report.results[0];
    assert!(report.results.iter().all(|r| r == reference));
    println!(
        "replicated histogram converged on all {} ranks ({} buckets):",
        report.results.len(),
        reference.len()
    );
    for (bucket, count) in reference.iter().take(8) {
        println!("  bucket {bucket:>3}: {count}");
    }
    println!("  ...");
    println!(
        "\nvirtual time: {}  |  wide-area messages: {}",
        report.elapsed, report.net_stats.inter_msgs
    );
    println!("(each rank's updates crossed each wide-area link exactly once per fence)");
}
