//! Build a *real* Awari endgame database, serially and in parallel on a
//! wide-area machine, and show they agree.
//!
//! ```sh
//! cargo run --release --example awari_database
//! ```

use twolayer::apps::awari_board::{level_size, solve};
use twolayer::apps::awari_real::{awari_real_rank, serial_awari_real, AwariRealConfig};
use twolayer::apps::total_checksum;
use twolayer::net::das_spec;
use twolayer::rt::Machine;

fn main() {
    let stones = 5;
    let cfg = AwariRealConfig {
        max_stones: stones,
        ..AwariRealConfig::small()
    };

    // Serial build.
    let db = solve(stones);
    println!("Awari endgame database, last-capture-wins variant, ≤{stones} stones\n");
    println!(
        "{:>7} {:>10} {:>8} {:>8} {:>8}",
        "stones", "positions", "wins", "losses", "draws"
    );
    for s in 0..=stones {
        let (w, l, d) = db.level_counts(s);
        println!("{s:>7} {:>10} {w:>8} {l:>8} {d:>8}", level_size(s));
    }

    // Distributed build on 4 clusters with 10 ms WAN links.
    let cfg2 = cfg.clone();
    let machine = Machine::new(das_spec(4, 4, 10.0, 1.0));
    let report = machine
        .run(move |ctx| awari_real_rank(ctx, &cfg2))
        .expect("simulation failed");
    let parallel = total_checksum(&report.results);
    let serial = serial_awari_real(&cfg);
    println!(
        "\nparallel build on 4x4 @ 10ms WAN: {} (virtual)",
        report.elapsed
    );
    println!(
        "traffic: {} wide-area messages, {} bytes",
        report.net_stats.inter_msgs, report.net_stats.inter_payload_bytes
    );
    assert!(
        (parallel - serial).abs() < 1e-9,
        "checksums diverge: {parallel} vs {serial}"
    );
    println!("database checksum matches the serial solver: {parallel:.4}");
}
