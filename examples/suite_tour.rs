//! Suite tour: run all six applications (small scale) on a wide-area machine
//! in both variants, verify every answer against its serial reference, and
//! print a mini report.
//!
//! ```sh
//! cargo run --release --example suite_tour
//! ```

use twolayer::apps::{
    checksum_tolerance, run_app, serial_checksum, AppId, Scale, SuiteConfig, Variant,
};
use twolayer::net::das_spec;
use twolayer::rt::Machine;

fn main() {
    let cfg = SuiteConfig::at(Scale::Small);
    let machine = Machine::new(das_spec(4, 2, 5.0, 1.0));
    println!("all six applications on 4x2 processors, 5 ms / 1 MB/s WAN\n");
    println!(
        "{:<12} {:<12} {:>10} {:>12} {:>10}",
        "Program", "variant", "runtime", "WAN msgs", "verified"
    );
    for app in AppId::ALL {
        let expected = serial_checksum(app, &cfg);
        for variant in [Variant::Unoptimized, Variant::Optimized] {
            let run = run_app(app, &cfg, variant, &machine).expect("run failed");
            let tol = checksum_tolerance(app).max(1e-15);
            let err =
                (run.checksum - expected).abs() / expected.abs().max(run.checksum.abs()).max(1e-30);
            let ok = err <= tol;
            println!(
                "{:<12} {:<12} {:>10} {:>12} {:>10}",
                app.to_string(),
                variant.to_string(),
                run.elapsed.to_string(),
                run.net.inter_msgs,
                if ok { "yes" } else { "NO" }
            );
            assert!(ok, "{app}/{variant} failed verification");
        }
    }
    println!("\nevery parallel answer matches its serial reference");
}
