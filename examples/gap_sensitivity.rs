//! Gap sensitivity: reproduce (a slice of) the paper's headline experiment —
//! how one application's speedup degrades as the wide-area links get slower,
//! and how much of it the cluster-aware restructuring buys back.
//!
//! ```sh
//! cargo run --release --example gap_sensitivity
//! ```

use twolayer::apps::asp::{asp_rank, AspConfig};
use twolayer::apps::Variant;
use twolayer::net::{das_spec, numa_gap, uniform_spec};
use twolayer::rt::Machine;

fn main() {
    let cfg = AspConfig::small();

    // Baseline: the same 8 processors on a uniform all-Myrinet cluster.
    let baseline = {
        let cfg = cfg.clone();
        Machine::new(uniform_spec(8))
            .run(move |ctx| asp_rank(ctx, &cfg, Variant::Unoptimized))
            .expect("baseline failed")
            .elapsed
    };
    println!("ASP on 8 processors; all-Myrinet baseline: {baseline}\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "WAN lat", "lat gap", "unoptimized", "optimized"
    );

    // Sweep the latency axis at a fixed bandwidth of 1 MByte/s (2 clusters
    // of 4 processors).
    for lat_ms in [0.5, 3.3, 10.0, 30.0, 100.0] {
        let spec = das_spec(2, 4, lat_ms, 1.0);
        let (lat_gap, _) = numa_gap(&spec);
        let machine = Machine::new(spec);
        let mut cells = Vec::new();
        for variant in [Variant::Unoptimized, Variant::Optimized] {
            let cfg = cfg.clone();
            let elapsed = machine
                .run(move |ctx| asp_rank(ctx, &cfg, variant))
                .expect("run failed")
                .elapsed;
            let rel = 100.0 * baseline.as_secs_f64() / elapsed.as_secs_f64();
            cells.push(rel);
        }
        println!(
            "{:>8}ms {:>11.0}x {:>13.1}% {:>13.1}%",
            lat_ms, lat_gap, cells[0], cells[1]
        );
    }
    println!("\n(speedup relative to the uniform-interconnect baseline; the");
    println!(" sequencer-migration variant tolerates a far larger gap)");
}
