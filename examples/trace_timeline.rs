//! Execution tracing: run ASP with the recorder on and export a Chrome
//! trace. Open the output in <https://ui.perfetto.dev> or `chrome://tracing`
//! to see per-rank compute/blocked slices and message flow arrows.
//!
//! ```sh
//! cargo run --release --example trace_timeline
//! # then load /tmp/asp_trace.json in Perfetto
//! ```

use twolayer::apps::asp::{asp_rank, AspConfig};
use twolayer::apps::Variant;
use twolayer::net::das_spec;
use twolayer::rt::Machine;

fn main() {
    let cfg = AspConfig::small();
    let machine = Machine::new(das_spec(2, 4, 5.0, 1.0)).with_tracing();
    let report = machine
        .run(move |ctx| asp_rank(ctx, &cfg, Variant::Optimized))
        .expect("simulation failed");
    let trace = report.trace.expect("tracing was enabled");

    println!("run finished in {} (virtual)", report.elapsed);
    println!(
        "trace: {} events, {} messages",
        trace.len(),
        trace.message_count()
    );
    for rank in 0..report.results.len() {
        let busy = trace.compute_time_of(rank);
        let util = 100.0 * busy.as_secs_f64() / report.elapsed.as_secs_f64();
        println!("  rank {rank}: {busy} computing ({util:.0}% utilization)");
    }

    let path = "/tmp/asp_trace.json";
    std::fs::write(path, trace.to_chrome_json()).expect("write trace");
    println!("\nChrome trace written to {path}");
    println!("open it in chrome://tracing or https://ui.perfetto.dev");
}
