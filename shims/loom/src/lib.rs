//! Offline stand-in for the `loom` model checker.
//!
//! The build environment has no route to crates.io, so this crate
//! reimplements the slice of loom's API the workspace uses:
//! [`model`], [`sync::Mutex`], [`sync::Condvar`], [`thread::spawn`] /
//! [`thread::JoinHandle`], [`thread::yield_now`] and [`hint::spin_loop`].
//!
//! # How it works
//!
//! [`model`] runs the closure once per *schedule*. Each run spawns real OS
//! threads, but a cooperative scheduler serializes them: exactly one thread
//! executes at a time, and control transfers only at synchronization
//! operations (lock, try-lock, condvar wait/notify, join, yield, thread
//! exit). At every transfer where more than one thread is runnable, the
//! scheduler consults a decision path; a depth-first search over those
//! decisions enumerates **every** interleaving of synchronization
//! operations. Because all cross-thread state in a well-formed test is
//! reached only through these primitives, exploring all sync-op
//! interleavings explores all observably distinct executions.
//!
//! Semantics chosen to be adversarial for wakeup bugs:
//!
//! * Condvars never wake spuriously — a waiter runs again only after a
//!   `notify`. A protocol that relies on spurious wakeups to avoid a lost
//!   wakeup therefore deadlocks here, which is the conservative direction
//!   for proving wakeup-safety.
//! * `notify_one` wakes the longest-waiting thread (FIFO).
//! * A state where no thread is runnable and not all threads have finished
//!   is reported as a deadlock, with the schedule that reached it.
//!
//! Differences from real loom: no atomics/`UnsafeCell` access tracking, no
//! `Arc` modeling (re-exported from `std`), no preemption bounding — the
//! search is exhaustive, so keep spin loops short under `cfg(loom)`.

use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex};

/// Hard cap on schedules explored per [`model`] call; exceeding it means
/// the test has too many choice points (e.g. a long spin loop) and would
/// effectively never terminate.
const MAX_SCHEDULES: u64 = 1_000_000;

/// Sentinel "no thread" id.
const NONE: usize = usize::MAX;

/// Panic payload used to unwind threads out of an aborted execution. Never
/// reported as a failure itself; the first real failure is.
struct AbortUnwind;

#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

struct Sched {
    threads: Vec<ThreadState>,
    /// The one thread allowed to execute, or [`NONE`] when the run is over.
    current: usize,
    /// Per-mutex owner thread, `None` when unlocked.
    mutexes: Vec<Option<usize>>,
    /// Per-condvar FIFO wait queue.
    condvars: Vec<VecDeque<usize>>,
    /// Choices to replay (branching points only), from the DFS driver.
    preset: Vec<usize>,
    cursor: usize,
    /// `(choice, options)` actually taken at each branching point this run.
    recorded: Vec<(usize, usize)>,
    aborted: bool,
    failure: Option<String>,
}

struct Exec {
    sched: StdMutex<Sched>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT_EXEC: RefCell<Option<StdArc<Exec>>> = const { RefCell::new(None) };
    static CURRENT_ID: Cell<usize> = const { Cell::new(NONE) };
}

fn current_exec() -> StdArc<Exec> {
    CURRENT_EXEC.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

fn current_id() -> usize {
    let id = CURRENT_ID.get();
    assert!(id != NONE, "loom primitive used outside loom::model");
    id
}

fn payload_str(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

type Guard<'a> = std::sync::MutexGuard<'a, Sched>;

impl Exec {
    fn new(preset: Vec<usize>) -> Self {
        Exec {
            sched: StdMutex::new(Sched {
                threads: Vec::new(),
                current: NONE,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                preset,
                cursor: 0,
                recorded: Vec::new(),
                aborted: false,
                failure: None,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    /// Locks the scheduler, surviving poisoning (a panicking thread may
    /// still hold the guard for an instant during unwinding).
    fn lock(&self) -> Guard<'_> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register_thread(&self) -> usize {
        let mut g = self.lock();
        g.threads.push(ThreadState::Runnable);
        g.threads.len() - 1
    }

    fn register_mutex(&self) -> usize {
        let mut g = self.lock();
        g.mutexes.push(None);
        g.mutexes.len() - 1
    }

    fn register_condvar(&self) -> usize {
        let mut g = self.lock();
        g.condvars.push(VecDeque::new());
        g.condvars.len() - 1
    }

    fn mark_failed(&self, g: &mut Sched, msg: String) {
        g.aborted = true;
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Picks the next thread to run among the runnable set; branching points
    /// (more than one option) consume one DFS decision. `Err` means the
    /// execution aborted (deadlock detected here, or a failure elsewhere).
    fn pick_next(&self, g: &mut Sched) -> Result<(), ()> {
        if g.aborted {
            return Err(());
        }
        let runnable: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if g.threads.iter().all(|s| *s == ThreadState::Finished) {
                g.current = NONE;
                self.cv.notify_all();
                return Ok(());
            }
            let msg = format!(
                "loom: deadlock — no runnable thread; states: {:?}; schedule: {:?}",
                g.threads, g.recorded
            );
            self.mark_failed(g, msg);
            return Err(());
        }
        let n = runnable.len();
        let choice = if n == 1 {
            0
        } else {
            let c = if g.cursor < g.preset.len() {
                g.preset[g.cursor]
            } else {
                0
            };
            g.cursor += 1;
            assert!(c < n, "loom: schedule replay diverged");
            g.recorded.push((c, n));
            c
        };
        g.current = runnable[choice];
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks the calling OS thread until the scheduler hands it control.
    fn wait_turn_locked<'a>(&'a self, mut g: Guard<'a>, me: usize) -> Guard<'a> {
        while g.current != me {
            if g.aborted {
                drop(g);
                std::panic::panic_any(AbortUnwind);
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        g
    }

    fn wait_turn(&self, me: usize) {
        let g = self.lock();
        let _g = self.wait_turn_locked(g, me);
    }

    /// The choice point: records `me`'s new state, lets the scheduler pick
    /// who runs next, and returns once `me` is scheduled again.
    fn switch(&self, me: usize, state: ThreadState) {
        let mut g = self.lock();
        if g.aborted {
            drop(g);
            std::panic::panic_any(AbortUnwind);
        }
        g.threads[me] = state;
        if self.pick_next(&mut g).is_err() {
            drop(g);
            std::panic::panic_any(AbortUnwind);
        }
        let _g = self.wait_turn_locked(g, me);
    }

    fn mutex_lock(&self, me: usize, mid: usize) {
        self.switch(me, ThreadState::Runnable);
        loop {
            {
                let mut g = self.lock();
                if g.mutexes[mid].is_none() {
                    g.mutexes[mid] = Some(me);
                    return;
                }
                debug_assert!(g.mutexes[mid] != Some(me), "loom: recursive lock");
            }
            self.switch(me, ThreadState::BlockedMutex(mid));
        }
    }

    fn mutex_try_lock(&self, me: usize, mid: usize) -> bool {
        self.switch(me, ThreadState::Runnable);
        let mut g = self.lock();
        if g.mutexes[mid].is_none() {
            g.mutexes[mid] = Some(me);
            true
        } else {
            false
        }
    }

    fn mutex_unlock(&self, mid: usize) {
        let mut g = self.lock();
        g.mutexes[mid] = None;
        for s in g.threads.iter_mut() {
            if *s == ThreadState::BlockedMutex(mid) {
                *s = ThreadState::Runnable;
            }
        }
    }

    /// Atomically releases `mid` and enqueues `me` on condvar `cid`, then
    /// yields; returns once notified *and* scheduled. The caller reacquires
    /// the mutex itself. No spurious wakeups.
    fn condvar_wait(&self, me: usize, cid: usize, mid: usize) {
        {
            let mut g = self.lock();
            g.mutexes[mid] = None;
            for s in g.threads.iter_mut() {
                if *s == ThreadState::BlockedMutex(mid) {
                    *s = ThreadState::Runnable;
                }
            }
            g.condvars[cid].push_back(me);
        }
        self.switch(me, ThreadState::BlockedCondvar(cid));
    }

    fn condvar_notify_one(&self, me: usize, cid: usize) {
        self.switch(me, ThreadState::Runnable);
        let mut g = self.lock();
        if let Some(w) = g.condvars[cid].pop_front() {
            g.threads[w] = ThreadState::Runnable;
        }
    }

    fn condvar_notify_all(&self, me: usize, cid: usize) {
        self.switch(me, ThreadState::Runnable);
        let mut g = self.lock();
        while let Some(w) = g.condvars[cid].pop_front() {
            g.threads[w] = ThreadState::Runnable;
        }
    }

    fn join_wait(&self, me: usize, target: usize) {
        self.switch(me, ThreadState::Runnable);
        loop {
            {
                let g = self.lock();
                if g.threads[target] == ThreadState::Finished {
                    return;
                }
            }
            self.switch(me, ThreadState::BlockedJoin(target));
        }
    }

    /// Marks `me` finished, wakes its joiners, and hands control onward.
    /// Never panics: a finishing thread has nothing left to unwind.
    fn thread_finished(&self, me: usize) {
        let mut g = self.lock();
        g.threads[me] = ThreadState::Finished;
        for s in g.threads.iter_mut() {
            if *s == ThreadState::BlockedJoin(me) {
                *s = ThreadState::Runnable;
            }
        }
        let _ = self.pick_next(&mut g);
    }
}

/// Explores every schedule of `f`. Panics with the failing schedule if any
/// interleaving panics or deadlocks.
pub fn model<F: Fn()>(f: F) {
    install_abort_filter();
    let mut preset: Vec<(usize, usize)> = Vec::new();
    let mut schedules: u64 = 0;
    loop {
        schedules += 1;
        assert!(
            schedules <= MAX_SCHEDULES,
            "loom: more than {MAX_SCHEDULES} schedules; shrink the model \
             (spin loops must be short under cfg(loom))"
        );
        let choices: Vec<usize> = preset.iter().map(|&(c, _)| c).collect();
        match run_once(&f, choices) {
            Err(msg) => panic!("loom: model failed after {schedules} schedule(s): {msg}"),
            Ok(recorded) => {
                preset = recorded;
                // DFS backtrack: advance the deepest non-exhausted choice.
                loop {
                    match preset.last_mut() {
                        None => return,
                        Some(last) if last.0 + 1 < last.1 => {
                            last.0 += 1;
                            break;
                        }
                        Some(_) => {
                            preset.pop();
                        }
                    }
                }
            }
        }
    }
}

fn run_once<F: Fn()>(f: &F, preset: Vec<usize>) -> Result<Vec<(usize, usize)>, String> {
    let exec = StdArc::new(Exec::new(preset));
    let main_id = exec.register_thread();
    {
        let mut g = exec.lock();
        g.current = main_id;
    }
    CURRENT_EXEC.with(|c| *c.borrow_mut() = Some(StdArc::clone(&exec)));
    CURRENT_ID.set(main_id);
    let r = catch_unwind(AssertUnwindSafe(f));
    {
        let mut g = exec.lock();
        if let Err(p) = &r {
            if !p.is::<AbortUnwind>() {
                let msg = format!(
                    "main thread panicked: {} (schedule: {:?})",
                    payload_str(p.as_ref()),
                    g.recorded
                );
                exec.mark_failed(&mut g, msg);
            }
        }
        g.threads[main_id] = ThreadState::Finished;
        for s in g.threads.iter_mut() {
            if *s == ThreadState::BlockedJoin(main_id) {
                *s = ThreadState::Runnable;
            }
        }
        let _ = exec.pick_next(&mut g);
        while !(g.aborted || g.threads.iter().all(|s| *s == ThreadState::Finished)) {
            g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
    CURRENT_EXEC.with(|c| *c.borrow_mut() = None);
    CURRENT_ID.set(NONE);
    let handles = std::mem::take(&mut *exec.handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    let g = exec.lock();
    match &g.failure {
        Some(msg) => Err(msg.clone()),
        None => Ok(g.recorded.clone()),
    }
}

/// Suppresses panic-hook output for the internal [`AbortUnwind`] payloads
/// that tear threads out of an aborted execution; everything else goes to
/// the previously installed hook.
fn install_abort_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<AbortUnwind>() {
                prev(info);
            }
        }));
    });
}

pub mod sync {
    //! Model-checked replacements for `std::sync` primitives.
    pub use std::sync::Arc;
    use std::sync::{LockResult, TryLockError, TryLockResult};

    use super::{current_exec, current_id, UnsafeCell};

    /// A mutex whose lock-acquisition order is a model-checking choice
    /// point. API-compatible with `std::sync::Mutex` (never poisons).
    pub struct Mutex<T> {
        cell: UnsafeCell<T>,
        id: usize,
    }

    // Safety: the cooperative scheduler runs exactly one thread at a time,
    // and the guard protocol keeps accesses exclusive, mirroring std.
    unsafe impl<T: Send> Send for Mutex<T> {}
    unsafe impl<T: Send> Sync for Mutex<T> {}

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    impl<T> Mutex<T> {
        /// Creates a mutex registered with the active model execution.
        pub fn new(value: T) -> Self {
            Mutex {
                cell: UnsafeCell::new(value),
                id: current_exec().register_mutex(),
            }
        }

        /// Acquires the lock, blocking (a schedule choice point).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let exec = current_exec();
            exec.mutex_lock(current_id(), self.id);
            Ok(MutexGuard { lock: self })
        }

        /// Attempts the lock without blocking (a schedule choice point).
        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            let exec = current_exec();
            if exec.mutex_try_lock(current_id(), self.id) {
                Ok(MutexGuard { lock: self })
            } else {
                Err(TryLockError::WouldBlock)
            }
        }
    }

    /// RAII guard for [`Mutex`]; releases on drop.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: holding the guard means the scheduler granted this
            // thread exclusive ownership of the mutex.
            unsafe { &*self.lock.cell.get() }
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // Safety: as in `deref`.
            unsafe { &mut *self.lock.cell.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            current_exec().mutex_unlock(self.lock.id);
        }
    }

    /// A condition variable with FIFO wakeup and **no** spurious wakeups —
    /// the adversarial setting for lost-wakeup proofs.
    pub struct Condvar {
        id: usize,
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    impl Condvar {
        /// Creates a condvar registered with the active model execution.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Condvar {
                id: current_exec().register_condvar(),
            }
        }

        /// Releases the guard's mutex, sleeps until notified, reacquires.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let lock = guard.lock;
            std::mem::forget(guard);
            let exec = current_exec();
            let me = current_id();
            exec.condvar_wait(me, self.id, lock.id);
            exec.mutex_lock(me, lock.id);
            Ok(MutexGuard { lock })
        }

        /// Wakes the longest-waiting thread, if any (a choice point).
        pub fn notify_one(&self) {
            current_exec().condvar_notify_one(current_id(), self.id);
        }

        /// Wakes every waiting thread (a choice point).
        pub fn notify_all(&self) {
            current_exec().condvar_notify_all(current_id(), self.id);
        }
    }
}

pub mod thread {
    //! Model-checked replacements for `std::thread` operations.
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc as StdArc, Mutex as StdMutex};

    use super::{current_exec, current_id, payload_str, AbortUnwind, CURRENT_EXEC, CURRENT_ID};

    type ResultSlot<T> = StdArc<StdMutex<Option<std::thread::Result<T>>>>;

    /// Handle to a model-checked thread; joining is a schedule choice point.
    pub struct JoinHandle<T> {
        id: usize,
        result: ResultSlot<T>,
        _not_send: PhantomData<*const ()>,
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("JoinHandle").field("id", &self.id).finish()
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result, mirroring
        /// `std::thread::JoinHandle::join`.
        pub fn join(self) -> std::thread::Result<T> {
            let exec = current_exec();
            exec.join_wait(current_id(), self.id);
            let slot = self.result.lock().unwrap_or_else(|e| e.into_inner()).take();
            slot.expect("loom: joined thread finished without a result")
        }
    }

    /// Spawns a thread under the scheduler; it runs only when scheduled.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let exec = current_exec();
        let id = exec.register_thread();
        let result: ResultSlot<T> = StdArc::new(StdMutex::new(None));
        let slot = StdArc::clone(&result);
        let exec2 = StdArc::clone(&exec);
        let handle = std::thread::spawn(move || {
            CURRENT_EXEC.with(|c| *c.borrow_mut() = Some(StdArc::clone(&exec2)));
            CURRENT_ID.set(id);
            let r = catch_unwind(AssertUnwindSafe(|| {
                exec2.wait_turn(id);
                f()
            }));
            match r {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                }
                Err(p) => {
                    if !p.is::<AbortUnwind>() {
                        let mut g = exec2.lock();
                        let msg = format!(
                            "thread {id} panicked: {} (schedule: {:?})",
                            payload_str(p.as_ref()),
                            g.recorded
                        );
                        exec2.mark_failed(&mut g, msg);
                    }
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(p));
                }
            }
            exec2.thread_finished(id);
        });
        exec.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        JoinHandle {
            id,
            result,
            _not_send: PhantomData,
        }
    }

    /// Cooperative yield: a pure schedule choice point.
    pub fn yield_now() {
        current_exec().switch(current_id(), super::ThreadState::Runnable);
    }
}

pub mod hint {
    //! Model-checked replacements for `std::hint`.

    /// No-op under the model: a spin iteration has no synchronization
    /// semantics, and the surrounding `try_lock`/`yield_now` calls are
    /// already choice points. Keeping it free keeps the schedule space
    /// small, so spin loops need not be fully removed under `cfg(loom)`
    /// (though they should be short).
    pub fn spin_loop() {}
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Condvar, Mutex};
    use super::thread;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn explores_both_orders_of_two_lock_holders() {
        // Record which thread got the lock first across all schedules; both
        // orders must be observed.
        let first_a = std::sync::Arc::new(AtomicU64::new(0));
        let first_b = std::sync::Arc::new(AtomicU64::new(0));
        let (fa, fb) = (
            std::sync::Arc::clone(&first_a),
            std::sync::Arc::clone(&first_b),
        );
        super::model(move || {
            let m = Arc::new(Mutex::new(Vec::new()));
            let m2 = Arc::clone(&m);
            let t = thread::spawn(move || {
                m2.lock().unwrap().push('a');
            });
            m.lock().unwrap().push('b');
            t.join().unwrap();
            let order = m.lock().unwrap().clone();
            match order[0] {
                'a' => fa.fetch_add(1, Ordering::Relaxed),
                _ => fb.fetch_add(1, Ordering::Relaxed),
            };
        });
        assert!(first_a.load(Ordering::Relaxed) > 0, "never saw a-first");
        assert!(first_b.load(Ordering::Relaxed) > 0, "never saw b-first");
    }

    #[test]
    fn correct_condvar_protocol_passes() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut ready = m.lock().unwrap();
                *ready = true;
                cv.notify_one();
                drop(ready);
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            t.join().unwrap();
        });
    }

    #[test]
    fn lost_wakeup_bug_is_caught_as_deadlock() {
        // Broken protocol: the waiter decides to wait based on a stale read
        // made *outside* the lock it waits under, so the notify can land in
        // the window between the check and the wait — with no spurious
        // wakeups, that schedule deadlocks and the model must report it.
        let r = std::panic::catch_unwind(|| {
            super::model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let pair2 = Arc::clone(&pair);
                let _t = thread::spawn(move || {
                    let (m, cv) = &*pair2;
                    *m.lock().unwrap() = true;
                    cv.notify_one();
                });
                let (m, cv) = &*pair;
                let stale = *m.lock().unwrap(); // guard dropped: race window opens
                if !stale {
                    let g = m.lock().unwrap();
                    drop(cv.wait(g).unwrap());
                }
            });
        });
        let err = r.expect_err("the lost-wakeup schedule must be found");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn assertion_failures_surface_with_a_schedule() {
        let r = std::panic::catch_unwind(|| {
            super::model(|| {
                let t = thread::spawn(|| panic!("intentional"));
                let _ = t.join();
            });
        });
        let err = r.expect_err("panic must surface");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("intentional"), "unexpected failure: {msg}");
    }
}
