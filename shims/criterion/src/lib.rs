//! Offline stand-in for the `criterion` crate.
//!
//! Provides the [`Criterion::bench_function`] / [`Bencher::iter`] /
//! [`criterion_group!`] / [`criterion_main!`] subset used by this workspace's
//! microbenchmarks. Measurement is a simple wall-clock mean over a fixed
//! batch of iterations — adequate for coarse "is the kernel fast enough"
//! numbers, with none of real criterion's statistics, warmup scheduling, or
//! HTML reports.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver; collects one timing per registered function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` with a [`Bencher`] and prints a mean per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let total_iters: u64 = b.samples.iter().map(|s| s.iters).sum();
        let total_nanos: u128 = b.samples.iter().map(|s| s.nanos).sum();
        let mean = if total_iters == 0 {
            0.0
        } else {
            total_nanos as f64 / total_iters as f64
        };
        println!(
            "bench {id:<40} {:>12.1} ns/iter ({total_iters} iters)",
            mean
        );
        self
    }

    /// Compatibility no-op matching real criterion's finalizer.
    pub fn final_summary(&mut self) {}
}

struct Sample {
    iters: u64,
    nanos: u128,
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Sample>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running a small calibrated batch per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate a batch size aiming for ~5ms per sample so cheap
        // routines are not dominated by timer overhead.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1);
        let batch = (5_000_000 / once).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(Sample {
                iters: batch,
                nanos: t.elapsed().as_nanos(),
            });
        }
    }
}

/// Declares a benchmark group; supports both the simple list form and the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            });
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
