//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline [`serde`] shim. The derives validate nothing and emit nothing;
//! they exist so that types annotated for serialization still compile in a
//! build environment with no access to crates.io.

use proc_macro::TokenStream;

/// Emits no code; accepts the same positions as `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits no code; accepts the same positions as `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
