//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of serde it actually relies on: the
//! `Serialize` / `Deserialize` *derive positions*. Nothing in this repository
//! serializes at runtime (reports are rendered by hand as text/CSV/JSON), so
//! the traits are empty markers and the derives are no-ops.
//!
//! If real serialization is ever needed, replace this shim by restoring the
//! crates.io dependency in the workspace `Cargo.toml`; the annotated types
//! are already written against the real serde API.

/// Marker counterpart of `serde::Serialize`; carries no behaviour.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`; carries no behaviour.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
