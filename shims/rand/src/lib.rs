//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! small API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] over
//! half-open ranges — backed by xoshiro256++ seeded through splitmix64.
//!
//! The stream differs from crates.io `StdRng` (ChaCha12), which is fine for
//! this repository: every consumer generates *and* checks its workloads with
//! the same generator, so only determinism and reasonable statistical
//! quality matter, not bit-compatibility.

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types producible uniformly from raw generator output (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range (`Rng::gen_range`).
pub trait SampleUniform: Sized {
    /// Draws one value from `[range.start, range.end)`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Unbiased rejection sampling over the smallest covering
                // power-of-two mask.
                let mask = span.next_power_of_two() - 1;
                loop {
                    let raw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) & mask;
                    if raw < span {
                        return (range.start as i128 + raw as i128) as Self;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on an empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = range.start as f64 + (range.end as f64 - range.start as f64) * unit;
                // Floating rounding may land exactly on `end`; clamp back
                // into the half-open interval.
                if v as Self >= range.end {
                    range.start
                } else {
                    v as Self
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// ChaCha12-based `StdRng`; see the crate docs for why the stream
    /// difference is acceptable here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
        // Both endpoints of a small range are reachable.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            match r.gen_range(0u8..2) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let u: f32 = r.gen_range(0.5f32..2.0);
            assert!((0.5..2.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5u32..5);
    }
}
