//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range and `any::<T>()` strategies, `prop::collection::vec`, and the
//! `prop_assert*` macros. Generation is deterministic: each test derives its
//! RNG seed from the test function's name, so failures reproduce exactly.
//! Shrinking is not implemented — the failing case's inputs are printed
//! instead.

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng};

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic source handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the test name so each property has a stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform + Copy + Debug> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Strategy for "any value of `T`" (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly unit-scale values; property tests here only need
        // "lots of distinct ordinary numbers", not NaN/inf edge cases.
        rng.gen_range(-1.0e6..1.0e6)
    }
}

impl<T> Strategy for AnyStrategy<T>
where
    T: Arbitrary,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, like `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The length specification accepted by [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Vector of values from `element`, like `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.lo..self.len.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The everything-import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Assertion inside a property; identical to `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property; identical to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares deterministic property tests.
///
/// Supports the shape used across this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<u64>(), 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&$strat, &mut rng);
                    )*
                    let desc = format!(
                        concat!("case #{}", $(concat!(" ", stringify!($arg), "={:?}"),)*),
                        case $(, &$arg)*
                    );
                    let result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(payload) = result {
                        eprintln!("proptest {} failed at {desc}", stringify!($name));
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(
            v in prop::collection::vec(any::<u64>(), 2..5),
            w in prop::collection::vec(0u8..3, 4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|&b| b < 3));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let s = crate::collection::vec(crate::any::<u64>(), 1..10);
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
